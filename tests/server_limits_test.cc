// The reactor server's failure modes and limits, end to end over
// loopback: a stalled client must be evicted (E SLOW_CONSUMER) without
// blocking anyone else's responses, pipeline-depth and rate limits must
// refuse with their structured codes, deadline expiry must answer in FIFO
// position, and Stop() must drain — rank and deliver every accepted
// query — before closing. Runs under TSan in CI (label `concurrency`).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/simple.h"
#include "core/engine.h"
#include "datagen/facebook.h"
#include "server/client.h"
#include "server/index_registry.h"
#include "server/model_registry.h"
#include "server/query_server.h"
#include "server/wire.h"
#include "util/socket.h"

namespace metaprox {
namespace {

using server::ErrorCode;
using server::ModelRegistry;
using server::QueryClient;
using server::QueryServer;
using server::ServerOptions;
using server::ServerStats;

struct Pipeline {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  MgpModel model;
  std::unique_ptr<ModelRegistry> registry;
  std::unique_ptr<server::IndexRegistry> indexes;
  std::vector<NodeId> users;
};

// One matched engine + model shared by every test; servers read the
// immutable snapshot through a shared index registry.
const Pipeline& SharedPipeline() {
  static const Pipeline* pipeline = [] {
    auto* p = new Pipeline();
    datagen::FacebookConfig cfg;
    cfg.num_users = 120;
    p->ds = datagen::GenerateFacebook(cfg, 31);
    EngineOptions options;
    options.miner.anchor_type = p->ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    options.num_threads = 2;
    p->engine = std::make_unique<SearchEngine>(p->ds.graph, options);
    p->engine->Mine();
    p->engine->MatchAll();
    p->model.weights = UniformWeights(p->engine->index());
    p->registry = std::make_unique<ModelRegistry>(p->model.weights.size());
    EXPECT_TRUE(p->registry->Load("main", p->model).ok());
    p->indexes =
        std::make_unique<server::IndexRegistry>(p->engine->Snapshot());
    auto pool = p->ds.graph.NodesOfType(p->ds.user_type);
    p->users.assign(pool.begin(), pool.end());
    return p;
  }();
  return *pipeline;
}

std::unique_ptr<QueryServer> StartServer(ServerOptions options) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  options.default_model = "main";
  options.num_threads = 2;  // keep the pooled ranking path under TSan
  auto server =
      std::make_unique<QueryServer>(p.indexes.get(), p.registry.get(),
                                    options);
  auto status = server->Start();
  EXPECT_TRUE(status.ok()) << status.ToString();
  return server;
}

/// The exact response line (with terminator) the offline engine would
/// produce — server responses must equal it byte for byte.
std::string ExpectedLine(NodeId node, size_t k) {
  const Pipeline& p = SharedPipeline();
  return server::BuildQueryResponse(node, p.engine->Query(p.model, node, k));
}

int CodeOf(const std::string& line) {
  int code = -1;
  std::string message;
  EXPECT_TRUE(server::ParseErrorResponse(line, &code, &message)) << line;
  return code;
}

// A stalled client (pipelines thousands of queries, never reads) must be
// evicted once its response backlog crosses the bound — and, the
// tentpole property, must NOT delay anyone else: a concurrent well-
// behaved client's responses keep flowing and stay byte-identical to
// offline output the whole time.
TEST(ServerLimits, SlowConsumerIsEvictedWithoutBlockingOthers) {
  ServerOptions options;
  options.window_micros = 0;
  options.max_response_queue_bytes = 4096;  // evict fast
  auto server = StartServer(options);
  const Pipeline& p = SharedPipeline();

  // The stall: a raw socket that writes one huge pipeline of large-k
  // queries and never reads a byte. Response volume (thousands of
  // ~2.5KB lines) dwarfs anything kernel socket buffers can absorb, so
  // the server-side backlog must cross the bound.
  auto stalled = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(stalled.ok());
  std::string burst;
  for (int i = 0; i < 6000; ++i) {
    burst += server::BuildQueryRequest(p.users[i % p.users.size()], 120);
  }
  ASSERT_TRUE(util::SendAll(*stalled, burst).ok());

  // Meanwhile a normal client round-trips queries one at a time; every
  // single one must come back promptly and bitwise-correct while the
  // stalled connection backs up and dies.
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  for (size_t i = 0; i < 100; ++i) {
    const NodeId q = p.users[(i * 7) % p.users.size()];
    auto response = client->Rank(q, 10);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const QueryResult expected = p.engine->Query(p.model, q, 10);
    ASSERT_EQ(response->entries.size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      EXPECT_EQ(response->entries[r].node, expected[r].first);
      EXPECT_EQ(response->entries[r].score, expected[r].second);
    }
  }

  // The eviction must have registered by the time the stalled
  // connection's fate is externally visible: the server closes it, so
  // reading it eventually hits EOF or a reset.
  char sink[4096];
  while (true) {
    ssize_t got = ::recv(stalled->fd(), sink, sizeof(sink), 0);
    if (got <= 0) break;
  }
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.slow_consumer_evictions, 1u);
  EXPECT_GE(stats.protocol_errors, 1u);
}

// A client that pipelines deeply but READS as it goes is a good citizen:
// its backlog keeps draining, so it must never be evicted, however many
// queries it pushes through a tight response bound.
TEST(ServerLimits, DrainingClientIsNeverEvicted) {
  ServerOptions options;
  options.window_micros = 0;
  options.max_response_queue_bytes = 4096;
  auto server = StartServer(options);
  const Pipeline& p = SharedPipeline();

  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  for (int round = 0; round < 10; ++round) {
    std::vector<NodeId> sent;
    for (int i = 0; i < 20; ++i) {
      const NodeId q = p.users[(round * 20 + i) % p.users.size()];
      ASSERT_TRUE(client->SendQuery(q, 25).ok());
      sent.push_back(q);
    }
    for (NodeId q : sent) {
      auto response = client->ReceiveResponse();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(response->query, q);
    }
  }
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.slow_consumer_evictions, 0u);
  EXPECT_EQ(stats.queries, 200u);
}

// Queries beyond max_pipeline are refused immediately with E 19 — the
// refusals overtake the queued queries' responses (documented), and the
// queries that were within the limit still rank byte-identically.
TEST(ServerLimits, PipelineDepthRefusalIsImmediateAndStructured) {
  ServerOptions options;
  options.max_pipeline = 4;
  options.window_micros = 400000;  // hold the window open: in_flight stays 4
  auto server = StartServer(options);
  const Pipeline& p = SharedPipeline();

  auto raw = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(raw.ok());
  std::string burst;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 12; ++i) {
    nodes.push_back(p.users[i]);
    burst += server::BuildQueryRequest(nodes.back(), 5);
  }
  ASSERT_TRUE(util::SendAll(*raw, burst).ok());

  util::LineReader reader(*raw);
  std::string line;
  // First the 8 refusals (immediate), then — after the window closes —
  // the 4 ranked responses, in send order.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(reader.ReadLine(&line)) << "refusal " << i;
    EXPECT_EQ(CodeOf(line), static_cast<int>(ErrorCode::kPipelineLimit));
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(reader.ReadLine(&line)) << "response " << i;
    EXPECT_EQ(line + "\n", ExpectedLine(nodes[i], 5));
  }
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.pipeline_refused, 8u);
  EXPECT_EQ(stats.queries, 4u);
}

// With a deadline far shorter than the batching window, every query of an
// underfull window expires in the queue and is answered E 21 in its FIFO
// position; with a sane configuration the same queries rank fine.
TEST(ServerLimits, DeadlineExpiryAnswersInFifoPosition) {
  const Pipeline& p = SharedPipeline();
  {
    ServerOptions options;
    options.request_deadline_micros = 20000;  // 20ms...
    options.window_micros = 300000;           // ...inside a 300ms window
    auto server = StartServer(options);

    auto raw = util::ConnectTcp("127.0.0.1", server->port());
    ASSERT_TRUE(raw.ok());
    std::string burst;
    for (int i = 0; i < 5; ++i) {
      burst += server::BuildQueryRequest(p.users[i], 5);
    }
    ASSERT_TRUE(util::SendAll(*raw, burst).ok());

    util::LineReader reader(*raw);
    std::string line;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(reader.ReadLine(&line)) << "expiry " << i;
      EXPECT_EQ(CodeOf(line),
                static_cast<int>(ErrorCode::kDeadlineExceeded));
    }
    const ServerStats stats = server->stats();
    EXPECT_EQ(stats.deadline_expired, 5u);
    EXPECT_EQ(stats.queries, 0u);
  }  // server stops here; one engine, one server at a time

  ServerOptions sane;
  sane.request_deadline_micros = 10'000'000;
  sane.window_micros = 0;
  auto server = StartServer(sane);
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Rank(p.users[0], 5);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(server->stats().deadline_expired, 0u);
}

// A burst far over the per-connection rate gets token-bucket refusals:
// roughly one second's burst allowance is served, the rest answered E 20.
TEST(ServerLimits, RateLimitRefusesTheExcess) {
  ServerOptions options;
  options.max_queries_per_second = 5.0;
  options.window_micros = 0;
  auto server = StartServer(options);
  const Pipeline& p = SharedPipeline();

  auto raw = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(raw.ok());
  std::string burst;
  for (int i = 0; i < 30; ++i) {
    burst += server::BuildQueryRequest(p.users[i % p.users.size()], 5);
  }
  ASSERT_TRUE(util::SendAll(*raw, burst).ok());

  util::LineReader reader(*raw);
  std::string line;
  size_t ranked = 0;
  size_t refused = 0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(reader.ReadLine(&line)) << "line " << i;
    if (line.rfind("R ", 0) == 0) {
      ++ranked;
    } else {
      EXPECT_EQ(CodeOf(line), static_cast<int>(ErrorCode::kRateLimited));
      ++refused;
    }
  }
  // The bucket holds one second of burst (5 tokens); a slow test machine
  // may refill a few tokens mid-burst, never dozens.
  EXPECT_GE(ranked, 5u);
  EXPECT_LE(ranked, 10u);
  EXPECT_EQ(refused, 30u - ranked);
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.rate_limited, refused);
}

// Stop() is a graceful drain: queries accepted before the Stop — still
// waiting in an open batching window — are ranked and DELIVERED before
// the socket closes, byte-identical to offline output, with EOF after.
TEST(ServerLimits, StopDrainsInFlightWindowThenCloses) {
  ServerOptions options;
  options.window_micros = 500000;  // 500ms: Stop() lands mid-window
  auto server = StartServer(options);
  const Pipeline& p = SharedPipeline();

  auto raw = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(raw.ok());
  std::string burst;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) {
    nodes.push_back(p.users[i * 3]);
    burst += server::BuildQueryRequest(nodes.back(), 10);
  }
  ASSERT_TRUE(util::SendAll(*raw, burst).ok());
  // Give the reactor a beat to accept the queries into the queue, then
  // stop mid-window: the drain must skip the remaining ~400ms of window
  // and still answer everything.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->Stop();

  util::LineReader reader(*raw);
  std::string line;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(reader.ReadLine(&line)) << "drained response " << i;
    EXPECT_EQ(line + "\n", ExpectedLine(nodes[i], 10));
  }
  EXPECT_FALSE(reader.ReadLine(&line));  // EOF: the server is gone
  EXPECT_EQ(server->stats().queries, 10u);
}

}  // namespace
}  // namespace metaprox
