#include <gtest/gtest.h>

#include "metagraph/metagraph.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

TEST(Metagraph, AddNodesAndEdges) {
  Metagraph m;
  MetaNodeId a = m.AddNode(0);
  MetaNodeId b = m.AddNode(1);
  MetaNodeId c = m.AddNode(0);
  m.AddEdge(a, b);
  m.AddEdge(b, c);
  EXPECT_EQ(m.num_nodes(), 3);
  EXPECT_EQ(m.num_edges(), 2);
  EXPECT_TRUE(m.HasEdge(a, b));
  EXPECT_TRUE(m.HasEdge(b, a));
  EXPECT_FALSE(m.HasEdge(a, c));
  EXPECT_EQ(m.Degree(b), 2);
  EXPECT_EQ(m.CountType(0), 2);
  EXPECT_EQ(m.CountType(1), 1);
}

TEST(Metagraph, EdgeIdempotent) {
  Metagraph m;
  MetaNodeId a = m.AddNode(0);
  MetaNodeId b = m.AddNode(0);
  m.AddEdge(a, b);
  m.AddEdge(a, b);
  EXPECT_EQ(m.num_edges(), 1);
  m.RemoveEdge(a, b);
  EXPECT_EQ(m.num_edges(), 0);
}

TEST(Metagraph, EdgesListsUpperTriangle) {
  Metagraph m = MakePath({0, 1, 0});
  auto edges = m.Edges();
  ASSERT_EQ(edges.size(), 2u);
  for (auto [a, b] : edges) EXPECT_LT(a, b);
}

TEST(Metagraph, Connectivity) {
  Metagraph empty;
  EXPECT_FALSE(empty.IsConnected());

  Metagraph single;
  single.AddNode(0);
  EXPECT_TRUE(single.IsConnected());

  Metagraph disconnected;
  disconnected.AddNode(0);
  disconnected.AddNode(0);
  EXPECT_FALSE(disconnected.IsConnected());

  Metagraph path = MakePath({0, 1, 2});
  EXPECT_TRUE(path.IsConnected());
}

TEST(Metagraph, IsPathDetection) {
  EXPECT_TRUE(MakePath({0, 1, 0}).IsPath());
  EXPECT_TRUE(MakePath({0, 1}).IsPath());

  // A star is not a path.
  Metagraph star;
  MetaNodeId c = star.AddNode(0);
  for (int i = 0; i < 3; ++i) star.AddEdge(c, star.AddNode(1));
  EXPECT_FALSE(star.IsPath());

  // A cycle is not a path.
  Metagraph cycle = MakePath({0, 1, 2});
  cycle.AddEdge(0, 2);
  EXPECT_FALSE(cycle.IsPath());

  // M1 of Fig. 2 (user-school-user + user-major-user) is not a path.
  Metagraph m1;
  MetaNodeId u1 = m1.AddNode(0);
  MetaNodeId u2 = m1.AddNode(0);
  MetaNodeId school = m1.AddNode(1);
  MetaNodeId major = m1.AddNode(2);
  m1.AddEdge(u1, school);
  m1.AddEdge(u2, school);
  m1.AddEdge(u1, major);
  m1.AddEdge(u2, major);
  EXPECT_FALSE(m1.IsPath());
  EXPECT_TRUE(m1.IsConnected());
}

TEST(Metagraph, ToStringPath) {
  TypeRegistry reg;
  TypeId user = reg.Intern("user");
  TypeId addr = reg.Intern("address");
  Metagraph m3 = MakePath({user, addr, user});
  EXPECT_EQ(m3.ToString(reg), "user-address-user");
}

TEST(Metagraph, ToStringGeneral) {
  TypeRegistry reg;
  TypeId user = reg.Intern("user");
  TypeId school = reg.Intern("school");
  Metagraph m;
  MetaNodeId a = m.AddNode(user);
  MetaNodeId b = m.AddNode(user);
  MetaNodeId s = m.AddNode(school);
  m.AddEdge(a, s);
  m.AddEdge(b, s);
  m.AddEdge(a, b);  // triangle: not a path
  std::string str = m.ToString(reg);
  EXPECT_NE(str.find("user"), std::string::npos);
  EXPECT_NE(str.find("school"), std::string::npos);
  EXPECT_NE(str.find("0-1"), std::string::npos);
}

TEST(Metagraph, NeighborMask) {
  Metagraph m = MakePath({0, 1, 2});
  EXPECT_EQ(m.NeighborMask(0), 0b010);
  EXPECT_EQ(m.NeighborMask(1), 0b101);
  EXPECT_EQ(m.NeighborMask(2), 0b010);
}

TEST(Metagraph, EqualityIsStructural) {
  Metagraph a = MakePath({0, 1, 0});
  Metagraph b = MakePath({0, 1, 0});
  EXPECT_EQ(a, b);
  b.AddEdge(0, 2);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace metaprox
