#include <gtest/gtest.h>

#include "baselines/simple.h"
#include "matching/matcher.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

struct Fixture {
  testing::ToyGraph toy;
  std::unique_ptr<MetagraphVectorIndex> index;
  // 0=surname 1=address 2=school 3=major 4=employer 5=hobby
};

Fixture MakeFixture(bool commit_all = true) {
  Fixture f{testing::MakeToyGraph(), nullptr};
  std::vector<Metagraph> metagraphs = {
      MakePath({f.toy.user, f.toy.surname, f.toy.user}),
      MakePath({f.toy.user, f.toy.address, f.toy.user}),
      MakePath({f.toy.user, f.toy.school, f.toy.user}),
      MakePath({f.toy.user, f.toy.major, f.toy.user}),
      MakePath({f.toy.user, f.toy.employer, f.toy.user}),
      MakePath({f.toy.user, f.toy.hobby, f.toy.user})};
  f.index = std::make_unique<MetagraphVectorIndex>(
      metagraphs.size(), f.toy.graph.num_nodes(), CountTransform::kRaw);
  auto matcher = CreateMatcher(MatcherKind::kSymISO);
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    if (!commit_all && i >= 3) break;
    SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
    SymPairCountingSink sink(sym, UINT64_MAX);
    matcher->Match(f.toy.graph, metagraphs[i], &sink);
    f.index->Commit(i, sink, sym.aut_size());
  }
  f.index->Finalize();
  return f;
}

TEST(UniformWeightsTest, AllCommittedGetOne) {
  Fixture f = MakeFixture();
  auto w = UniformWeights(*f.index);
  ASSERT_EQ(w.size(), 6u);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(UniformWeightsTest, UncommittedGetZero) {
  Fixture f = MakeFixture(/*commit_all=*/false);
  auto w = UniformWeights(*f.index);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  EXPECT_DOUBLE_EQ(w[3], 0.0);
  EXPECT_DOUBLE_EQ(w[4], 0.0);
  EXPECT_DOUBLE_EQ(w[5], 0.0);
}

TEST(BestSingle, PicksPlantedClassMetagraph) {
  Fixture f = MakeFixture();
  // Family ground truth: Alice-Bob (surname+address). The surname or
  // address metapath should be selected — both rank Alice first for Bob.
  GroundTruth gt("family");
  gt.AddPositivePair(f.toy.alice, f.toy.bob);
  gt.Finalize();
  std::vector<NodeId> train_queries = {f.toy.alice, f.toy.bob};
  auto w = BestSingleMetagraphWeights(*f.index, gt, train_queries, 10);
  ASSERT_EQ(w.size(), 6u);
  double total = 0.0;
  for (double v : w) total += v;
  EXPECT_DOUBLE_EQ(total, 1.0);  // one-hot
  EXPECT_TRUE(w[0] == 1.0 || w[1] == 1.0)
      << "expected surname or address metapath to win";
}

TEST(BestSingle, ClassmateClassPicksSchoolOrMajor) {
  Fixture f = MakeFixture();
  GroundTruth gt("classmate");
  gt.AddPositivePair(f.toy.kate, f.toy.jay);
  gt.AddPositivePair(f.toy.bob, f.toy.tom);
  gt.Finalize();
  std::vector<NodeId> train_queries = {f.toy.kate, f.toy.bob};
  auto w = BestSingleMetagraphWeights(*f.index, gt, train_queries, 10);
  EXPECT_TRUE(w[2] == 1.0 || w[3] == 1.0)
      << "expected school or major metapath to win";
}

TEST(BestSingle, EmptyTrainingStillReturnsOneHot) {
  Fixture f = MakeFixture();
  GroundTruth gt("empty");
  gt.Finalize();
  auto w = BestSingleMetagraphWeights(*f.index, gt, {}, 10);
  double total = 0.0;
  for (double v : w) total += v;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

}  // namespace
}  // namespace metaprox
