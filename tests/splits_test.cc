#include <gtest/gtest.h>

#include <algorithm>

#include "eval/splits.h"

namespace metaprox {
namespace {

GroundTruth MakeGt(int num_queries) {
  GroundTruth gt("c");
  for (int i = 0; i < num_queries; ++i) {
    gt.AddPositivePair(static_cast<NodeId>(i),
                       static_cast<NodeId>(i + 1000));
  }
  gt.Finalize();
  return gt;
}

TEST(Splits, FractionRespected) {
  GroundTruth gt = MakeGt(100);
  util::Rng rng(1);
  QuerySplit split = SplitQueries(gt, 0.2, rng);
  // 100 queries on each side of the pair -> 200 total query nodes.
  EXPECT_EQ(split.train.size() + split.test.size(), gt.queries().size());
  EXPECT_NEAR(static_cast<double>(split.train.size()) /
                  static_cast<double>(gt.queries().size()),
              0.2, 0.01);
}

TEST(Splits, DisjointCover) {
  GroundTruth gt = MakeGt(50);
  util::Rng rng(2);
  QuerySplit split = SplitQueries(gt, 0.3, rng);
  std::vector<NodeId> all = split.train;
  all.insert(all.end(), split.test.begin(), split.test.end());
  std::sort(all.begin(), all.end());
  std::vector<NodeId> expected = gt.queries();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all, expected);
}

TEST(Splits, AtLeastOneEachSide) {
  GroundTruth gt = MakeGt(2);
  util::Rng rng(3);
  QuerySplit split = SplitQueries(gt, 0.01, rng);
  EXPECT_GE(split.train.size(), 1u);
  EXPECT_GE(split.test.size(), 1u);
}

TEST(Splits, DifferentSeedsDiffer) {
  GroundTruth gt = MakeGt(100);
  util::Rng r1(10), r2(20);
  QuerySplit a = SplitQueries(gt, 0.2, r1);
  QuerySplit b = SplitQueries(gt, 0.2, r2);
  EXPECT_NE(a.train, b.train);
}

TEST(SampleExamples, TripletsAreValid) {
  GroundTruth gt("c");
  std::vector<NodeId> pool;
  for (NodeId i = 0; i < 40; ++i) pool.push_back(i);
  // Positives: (0,1), (2,3), ..., (18,19).
  for (NodeId i = 0; i < 20; i += 2) gt.AddPositivePair(i, i + 1);
  gt.Finalize();
  util::Rng rng(5);
  std::vector<NodeId> train_queries = {0, 2, 4, 6};
  auto examples = SampleExamples(gt, train_queries, pool, 100, rng);
  EXPECT_EQ(examples.size(), 100u);
  for (const Example& e : examples) {
    EXPECT_TRUE(std::find(train_queries.begin(), train_queries.end(), e.q) !=
                train_queries.end());
    EXPECT_TRUE(gt.IsPositive(e.q, e.x));
    EXPECT_FALSE(gt.IsPositive(e.q, e.y));
    EXPECT_NE(e.y, e.q);
    EXPECT_NE(e.y, e.x);
  }
}

TEST(SampleExamples, EmptyInputsHandled) {
  GroundTruth gt = MakeGt(5);
  util::Rng rng(6);
  std::vector<NodeId> pool = {1, 2, 3, 4, 5};
  EXPECT_TRUE(SampleExamples(gt, {}, pool, 10, rng).empty());
  std::vector<NodeId> queries = {0};
  std::vector<NodeId> tiny_pool = {0};
  EXPECT_TRUE(SampleExamples(gt, queries, tiny_pool, 10, rng).empty());
}

TEST(SampleExamples, DeterministicForSeed) {
  GroundTruth gt = MakeGt(20);
  std::vector<NodeId> pool;
  for (NodeId i = 0; i < 100; ++i) pool.push_back(i);
  std::vector<NodeId> queries = gt.queries();
  util::Rng r1(7), r2(7);
  auto a = SampleExamples(gt, queries, pool, 50, r1);
  auto b = SampleExamples(gt, queries, pool, 50, r2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].q, b[i].q);
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

}  // namespace
}  // namespace metaprox
