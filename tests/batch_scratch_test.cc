// The sparse (epoch-marked) batch scratch: BatchRankByProximity with a
// reused BatchScratch must return results IDENTICAL to the per-query
// sequential path and to fresh-scratch runs, for tiny batches on a large
// graph (the configuration the scratch exists for) and across arbitrary
// sequences of reusing calls — stale epochs must never leak one batch's
// marks or cached dots into the next.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/simple.h"
#include "core/engine.h"
#include "core/query_batch.h"
#include "datagen/facebook.h"
#include "learning/proximity.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

struct Pipeline {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  MgpModel model;
  std::vector<NodeId> users;
};

// A graph large relative to any batch's touched rows (~1.3k nodes vs.
// batches of 1-3 queries), matched once and shared by every test (the
// batch path only reads the finalized index).
const Pipeline& SharedPipeline() {
  static const Pipeline* pipeline = [] {
    auto* p = new Pipeline();
    datagen::FacebookConfig cfg;
    cfg.num_users = 600;
    p->ds = datagen::GenerateFacebook(cfg, 11);

    EngineOptions options;
    options.miner.anchor_type = p->ds.user_type;
    options.miner.min_support = 6;
    options.miner.max_nodes = 3;  // paths only: keeps matching cheap
    p->engine = std::make_unique<SearchEngine>(p->ds.graph, options);
    p->engine->Mine();
    p->engine->MatchAll();
    p->model.weights = UniformWeights(p->engine->index());

    auto pool = p->ds.graph.NodesOfType(p->ds.user_type);
    p->users.assign(pool.begin(), pool.end());
    return p;
  }();
  return *pipeline;
}

void ExpectIdenticalToSequential(std::span<const NodeId> queries, size_t k,
                                 const std::vector<QueryResult>& batched) {
  const Pipeline& p = SharedPipeline();
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult sequential = p.engine->Query(p.model, queries[i], k);
    ASSERT_EQ(batched[i].size(), sequential.size())
        << "query #" << i << " (node " << queries[i] << ")";
    for (size_t r = 0; r < sequential.size(); ++r) {
      EXPECT_EQ(batched[i][r].first, sequential[r].first)
          << "query #" << i << " rank " << r;
      EXPECT_EQ(batched[i][r].second, sequential[r].second)
          << "query #" << i << " rank " << r;
    }
  }
}

TEST(BatchScratch, TinyBatchesOnLargeGraphMatchSequential) {
  const Pipeline& p = SharedPipeline();
  util::ThreadPool four_threads(4);
  // ONE scratch reused across every batch size, pool flavor and
  // repetition — exactly the serving-loop usage the scratch is for.
  BatchScratch scratch;
  for (size_t batch_size : {size_t{1}, size_t{3}}) {
    for (util::ThreadPool* pool :
         {static_cast<util::ThreadPool*>(nullptr), &four_threads}) {
      for (size_t offset : {size_t{0}, size_t{17}, size_t{130}}) {
        SCOPED_TRACE(::testing::Message()
                     << "batch " << batch_size << ", offset " << offset
                     << (pool ? ", pooled" : ", no pool"));
        std::vector<NodeId> queries;
        for (size_t i = 0; i < batch_size; ++i) {
          queries.push_back(p.users[(offset + i) % p.users.size()]);
        }
        auto batched = BatchRankByProximity(
            p.engine->index(), p.model.weights, queries, /*k=*/10, pool,
            &scratch);
        ExpectIdenticalToSequential(queries, 10, batched);
      }
    }
  }
}

TEST(BatchScratch, ReuseAcrossCallsDoesNotLeakStaleState) {
  const Pipeline& p = SharedPipeline();
  const std::vector<NodeId> batch_a = {p.users[0], p.users[1], p.users[2]};
  const std::vector<NodeId> batch_b = {p.users[40], p.users[41]};

  // Fresh-scratch references for both batches.
  auto fresh_a = BatchRankByProximity(p.engine->index(), p.model.weights,
                                      batch_a, 10);
  auto fresh_b = BatchRankByProximity(p.engine->index(), p.model.weights,
                                      batch_b, 10);

  // The same scratch serving A, then B, then A again (disjoint and
  // overlapping touched sets, alternating k in between to move the epoch):
  // every call must reproduce the fresh-scratch results exactly.
  BatchScratch scratch;
  auto reused_a1 = BatchRankByProximity(p.engine->index(), p.model.weights,
                                        batch_a, 10, nullptr, &scratch);
  EXPECT_EQ(reused_a1, fresh_a);
  auto reused_b = BatchRankByProximity(p.engine->index(), p.model.weights,
                                       batch_b, 10, nullptr, &scratch);
  EXPECT_EQ(reused_b, fresh_b);
  // A smaller k in between must not perturb later full-k results.
  (void)BatchRankByProximity(p.engine->index(), p.model.weights, batch_b, 2,
                             nullptr, &scratch);
  auto reused_a2 = BatchRankByProximity(p.engine->index(), p.model.weights,
                                        batch_a, 10, nullptr, &scratch);
  EXPECT_EQ(reused_a2, fresh_a);
  ExpectIdenticalToSequential(batch_a, 10, reused_a2);
}

TEST(BatchScratch, EngineBatchQueryReusesItsScratch) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  // Back-to-back engine BatchQuery calls share the engine's scratch; each
  // must match per-query Query() regardless of what ran before.
  const std::vector<NodeId> first = {p.users[5], p.users[9], p.users[5]};
  const std::vector<NodeId> second = {p.users[100]};
  ExpectIdenticalToSequential(first, 10, p.engine->BatchQuery(p.model, first, 10));
  ExpectIdenticalToSequential(second, 10,
                              p.engine->BatchQuery(p.model, second, 10));
  ExpectIdenticalToSequential(first, 10, p.engine->BatchQuery(p.model, first, 10));
}

TEST(BatchScratch, EpochSemantics) {
  BatchScratch scratch;
  scratch.BeginBatch(8);
  EXPECT_TRUE(scratch.touched().empty());
  EXPECT_TRUE(scratch.MarkTouched(3));
  EXPECT_FALSE(scratch.MarkTouched(3));  // second touch, same batch
  EXPECT_TRUE(scratch.MarkTouched(7));
  scratch.SetNodeDot(3, 0.5);
  scratch.SetNodeDot(7, -1.25);
  EXPECT_EQ(scratch.NodeDot(3), 0.5);
  EXPECT_EQ(scratch.NodeDot(7), -1.25);
  ASSERT_EQ(scratch.touched().size(), 2u);
  EXPECT_EQ(scratch.touched()[0], 3u);
  EXPECT_EQ(scratch.touched()[1], 7u);

  // New batch: all marks expire without any clearing pass.
  scratch.BeginBatch(8);
  EXPECT_TRUE(scratch.touched().empty());
  EXPECT_TRUE(scratch.MarkTouched(3));
  scratch.SetNodeDot(3, 2.0);
  EXPECT_EQ(scratch.NodeDot(3), 2.0);

  // Different graph size: tables resize, marks expire.
  scratch.BeginBatch(20);
  EXPECT_TRUE(scratch.touched().empty());
  EXPECT_TRUE(scratch.MarkTouched(19));
  EXPECT_TRUE(scratch.MarkTouched(3));

  // Back to the original size: still no stale marks (the resize path
  // reset the epoch, the bump path advanced it — either way fresh).
  scratch.BeginBatch(8);
  EXPECT_TRUE(scratch.MarkTouched(3));
}

TEST(BatchScratch, MultiModelDotRows) {
  BatchScratch scratch;
  scratch.BeginBatch(8, 3);
  EXPECT_EQ(scratch.num_models(), 3u);
  EXPECT_TRUE(scratch.MarkTouched(5));
  double* dots = scratch.MutableNodeDots(5);
  dots[0] = 1.0;
  dots[1] = 2.0;
  dots[2] = 3.0;
  EXPECT_EQ(scratch.NodeDots(5)[1], 2.0);
  // NodeDot (the single-model accessor) reads model 0's slot.
  EXPECT_EQ(scratch.NodeDot(5), 1.0);

  // Narrowing back to one model: same node id maps to a different slot in
  // the packed layout; the epoch must have expired the old row.
  scratch.BeginBatch(8, 1);
  EXPECT_EQ(scratch.num_models(), 1u);
  EXPECT_TRUE(scratch.MarkTouched(5));
  scratch.SetNodeDot(5, 7.5);
  EXPECT_EQ(scratch.NodeDot(5), 7.5);
}

TEST(BatchScratch, TouchedCapacityHoldsTheHighWaterMark) {
  BatchScratch scratch;
  scratch.BeginBatch(64);
  for (NodeId x = 0; x < 40; ++x) scratch.MarkTouched(x);
  // The NEXT batch reserves at least the previous batch's touched count up
  // front, so a serving loop stops re-growing the list after warm-up.
  scratch.BeginBatch(64);
  EXPECT_GE(scratch.touched_capacity(), 40u);
  const size_t warm_capacity = scratch.touched_capacity();
  for (NodeId x = 0; x < 40; ++x) scratch.MarkTouched(x);
  EXPECT_EQ(scratch.touched_capacity(), warm_capacity)
      << "a batch no larger than the high-water mark must not reallocate";
}

TEST(BatchScratchDeathTest, ReadingAnUnmarkedRowDiesInDebugBuilds) {
#ifdef NDEBUG
  GTEST_SKIP() << "MX_DCHECK is compiled out in NDEBUG builds";
#else
#ifdef GTEST_FLAG_SET
  GTEST_FLAG_SET(death_test_style, "threadsafe");
#else
  // Pre-1.12 GoogleTest (e.g. a system install) has no GTEST_FLAG_SET.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
#endif
  BatchScratch scratch;
  scratch.BeginBatch(8);
  scratch.MarkTouched(3);
  scratch.SetNodeDot(3, 1.0);
  // Node 4 was never marked this batch: its slot may hold a stale dot from
  // an earlier epoch, so the read must be rejected, not served.
  EXPECT_DEATH((void)scratch.NodeDot(4), "");
  EXPECT_DEATH((void)scratch.NodeDots(4), "");
#endif
}

}  // namespace
}  // namespace metaprox
