// Sharded vector-index commits: the finalized index (and its serialized
// form) must be byte-identical to the serial build for any shard count and
// any commit order/interleaving, and the Commit/Seal/Finalize lifecycle
// guards must hold.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/facebook.h"
#include "index/metagraph_vectors.h"
#include "matching/matcher.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace metaprox {
namespace {

std::string SerializeIndex(const MetagraphVectorIndex& index) {
  std::ostringstream out;
  auto status = index.WriteTo(out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

datagen::Dataset MakeDataset(uint32_t num_users = 140, uint64_t seed = 31) {
  datagen::FacebookConfig cfg;
  cfg.num_users = num_users;
  return datagen::GenerateFacebook(cfg, seed);
}

EngineOptions MakeOptions(const datagen::Dataset& ds, unsigned num_threads,
                          size_t num_shards) {
  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  options.miner.min_support = 3;
  options.miner.max_nodes = 4;
  options.num_threads = num_threads;
  options.num_shards = num_shards;
  return options;
}

// ---- engine-level determinism across shard counts ------------------------

class ShardDeterminism : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardDeterminism, SerialBuildEqualsShardedBuild) {
  const size_t shards = GetParam();
  datagen::Dataset ds = MakeDataset();

  SearchEngine serial(ds.graph, MakeOptions(ds, /*threads=*/1, /*shards=*/1));
  serial.Mine();
  serial.MatchAll();
  const std::string reference = SerializeIndex(serial.index());
  ASSERT_GT(serial.metagraphs().size(), 5u);

  for (unsigned threads : {1u, 4u, 8u}) {
    SearchEngine engine(ds.graph, MakeOptions(ds, threads, shards));
    engine.Mine();
    engine.MatchAll();
    ASSERT_EQ(engine.metagraphs().size(), serial.metagraphs().size());
    EXPECT_EQ(SerializeIndex(engine.index()), reference)
        << "index built with " << threads << " threads and " << shards
        << " shards diverged from the serial build";
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardDeterminism,
                         ::testing::Values<size_t>(1, 4, 7));

// ---- index-level concurrent commits --------------------------------------

// Builds the per-metagraph sinks once (serially), then commits them into a
// fresh index, optionally from many pool threads at once and in reverse
// order. Whatever the interleaving, Seal() + Finalize() must converge to
// the same bytes.
class SinkSet {
 public:
  explicit SinkSet(const testing::ToyGraph& toy) : toy_(toy) {
    metagraphs_ = {MakePath({toy.user, toy.address, toy.user}),
                   MakePath({toy.user, toy.school, toy.user}),
                   MakePath({toy.user, toy.major, toy.user}),
                   MakePath({toy.user, toy.employer, toy.user}),
                   MakePath({toy.user, toy.hobby, toy.user})};
    auto matcher = CreateMatcher(MatcherKind::kSymISO);
    for (const Metagraph& m : metagraphs_) {
      syms_.push_back(AnalyzeSymmetry(m));
    }
    for (size_t i = 0; i < metagraphs_.size(); ++i) {
      sinks_.push_back(
          std::make_unique<SymPairCountingSink>(syms_[i], UINT64_MAX));
      matcher->Match(toy.graph, metagraphs_[i], sinks_.back().get());
    }
  }

  size_t size() const { return metagraphs_.size(); }

  void Commit(MetagraphVectorIndex& index, size_t i) const {
    index.Commit(static_cast<uint32_t>(i), *sinks_[i], syms_[i].aut_size());
  }

  MetagraphVectorIndex MakeIndex(size_t num_shards) const {
    return MetagraphVectorIndex(size(), toy_.graph.num_nodes(),
                                CountTransform::kRaw, num_shards);
  }

 private:
  const testing::ToyGraph& toy_;
  std::vector<Metagraph> metagraphs_;
  std::vector<SymmetryInfo> syms_;
  std::vector<std::unique_ptr<SymPairCountingSink>> sinks_;
};

TEST(IndexShard, ConcurrentCommitsMatchSerialBytes) {
  auto toy = testing::MakeToyGraph();
  SinkSet sinks(toy);

  MetagraphVectorIndex serial = sinks.MakeIndex(1);
  for (size_t i = 0; i < sinks.size(); ++i) sinks.Commit(serial, i);
  serial.Seal();
  serial.Finalize();
  const std::string reference = SerializeIndex(serial);

  util::ThreadPool pool(4);
  for (size_t shards : {1u, 3u, 8u}) {
    MetagraphVectorIndex index = sinks.MakeIndex(shards);
    std::vector<std::future<void>> futures;
    // Reverse order, all in flight at once.
    for (size_t i = sinks.size(); i-- > 0;) {
      futures.push_back(
          pool.Submit([&index, &sinks, i] { sinks.Commit(index, i); }));
    }
    for (auto& f : futures) f.get();
    index.Seal();
    EXPECT_EQ(SerializeIndex(index), reference)
        << "pre-finalize serialization diverged with " << shards << " shards";
    index.Finalize();
    EXPECT_EQ(SerializeIndex(index), reference)
        << "finalized serialization diverged with " << shards << " shards";
    EXPECT_EQ(index.num_pairs(), serial.num_pairs());
  }
}

TEST(IndexShard, RoundTripThroughReadFrom) {
  auto toy = testing::MakeToyGraph();
  SinkSet sinks(toy);
  MetagraphVectorIndex index = sinks.MakeIndex(5);
  for (size_t i = 0; i < sinks.size(); ++i) sinks.Commit(index, i);
  index.Seal();
  index.Finalize();

  std::istringstream is(SerializeIndex(index));
  auto loaded = MetagraphVectorIndex::ReadFrom(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->finalized());
  EXPECT_EQ(SerializeIndex(*loaded), SerializeIndex(index));
}

// ---- lifecycle guards ----------------------------------------------------

TEST(IndexShardDeathTest, FinalizeTwiceAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto toy = testing::MakeToyGraph();
  MetagraphVectorIndex index(1, toy.graph.num_nodes(), CountTransform::kRaw,
                             2);
  index.Finalize();
  EXPECT_DEATH(index.Finalize(), "Finalize\\(\\) called twice");
}

TEST(IndexShardDeathTest, CommitAfterFinalizeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto toy = testing::MakeToyGraph();
  SinkSet sinks(toy);
  MetagraphVectorIndex index = sinks.MakeIndex(2);
  sinks.Commit(index, 0);
  index.Finalize();
  EXPECT_DEATH(sinks.Commit(index, 1), "Commit\\(\\) after Finalize\\(\\)");
}

TEST(IndexShardDeathTest, DoubleCommitAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto toy = testing::MakeToyGraph();
  SinkSet sinks(toy);
  MetagraphVectorIndex index = sinks.MakeIndex(2);
  sinks.Commit(index, 0);
  EXPECT_DEATH(sinks.Commit(index, 0), "committed twice");
}

TEST(IndexShard, SealIsIdempotentAndSafeAfterFinalize) {
  auto toy = testing::MakeToyGraph();
  SinkSet sinks(toy);
  MetagraphVectorIndex index = sinks.MakeIndex(3);
  for (size_t i = 0; i < sinks.size(); ++i) sinks.Commit(index, i);
  index.Seal();
  index.Seal();  // no-op
  const std::string sealed = SerializeIndex(index);
  index.Finalize();
  index.Seal();  // no-op after finalize
  EXPECT_EQ(SerializeIndex(index), sealed);
}

}  // namespace
}  // namespace metaprox
