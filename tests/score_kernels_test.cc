// The score kernels' bitwise contract (core/score_kernels.h): the
// dispatched kernel — whichever the CPU and METAPROX_FORCE_SCALAR_KERNELS
// selected for this process — and the scalar reference must agree to the
// bit on every input, and the multi-weight kernel must reproduce the
// single-weight dot per model exactly. Everything downstream ("batch ==
// Query, bitwise", "scalar server == SIMD server, byte for byte") reduces
// to these properties.
#include "core/score_kernels.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace metaprox::kernels {
namespace {

constexpr size_t kNumWeights = 96;

std::vector<RowEntry> RandomRow(size_t len, util::Rng& rng) {
  std::vector<RowEntry> row;
  row.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Counts like the index produces: non-negative, often large (embedding
    // counts), occasionally zero.
    const float count =
        rng.UniformInt(10) == 0
            ? 0.0f
            : static_cast<float>(rng.UniformDouble(0.0, 3.0e6));
    row.emplace_back(static_cast<uint32_t>(rng.UniformInt(kNumWeights)),
                     count);
  }
  return row;
}

std::vector<double> RandomWeights(util::Rng& rng) {
  std::vector<double> w(kNumWeights);
  // Mixed-sign weights (training produces them); exact zeros exercise the
  // numer/denom guards downstream.
  for (double& x : w) {
    x = rng.UniformInt(8) == 0 ? 0.0 : rng.UniformDouble(-2.0, 2.0);
  }
  return w;
}

TEST(ScoreKernels, DispatchedMatchesScalarBitwise) {
  util::Rng rng(1234);
  for (RowTransform transform : {RowTransform::kRaw, RowTransform::kLog1p}) {
    for (size_t len : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                       size_t{5}, size_t{7}, size_t{8}, size_t{13}, size_t{64},
                       size_t{200}, size_t{4096}}) {
      const std::vector<RowEntry> row = RandomRow(len, rng);
      const std::vector<double> w = RandomWeights(rng);
      const double scalar = RowDotScalar(row, w, transform);
      const double dispatched = RowDot(row, w, transform);
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bit equality.
      EXPECT_EQ(scalar, dispatched)
          << "len " << len << ", transform " << static_cast<int>(transform)
          << " (active kernel: " << KernelName(ActiveKernel()) << ")";
    }
  }
}

TEST(ScoreKernels, EmptyRowIsExactlyZero) {
  const std::vector<double> w(kNumWeights, 1.5);
  EXPECT_EQ(RowDot({}, w, RowTransform::kRaw), 0.0);
  EXPECT_EQ(RowDotScalar({}, w, RowTransform::kLog1p), 0.0);
}

TEST(ScoreKernels, MultiWeightSetInterleavesByIndex) {
  std::vector<double> w0 = {1.0, 2.0, 3.0};
  std::vector<double> w1 = {10.0, 20.0, 30.0};
  const std::vector<std::span<const double>> models = {w0, w1};
  MultiWeightSet set;
  set.Assign(models);
  ASSERT_EQ(set.num_models(), 2u);
  ASSERT_EQ(set.num_weights(), 3u);
  EXPECT_EQ(set.lane_scratch_size(), 8u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(set.row(i)[0], w0[i]);
    EXPECT_EQ(set.row(i)[1], w1[i]);
  }
}

TEST(ScoreKernels, MultiMatchesSingleWeightPerModelBitwise) {
  util::Rng rng(987);
  for (RowTransform transform : {RowTransform::kRaw, RowTransform::kLog1p}) {
    for (size_t n_models :
         {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5}, size_t{8}}) {
      std::vector<std::vector<double>> storage;
      std::vector<std::span<const double>> models;
      for (size_t m = 0; m < n_models; ++m) {
        storage.push_back(RandomWeights(rng));
      }
      for (const auto& w : storage) models.push_back(w);
      MultiWeightSet set;
      set.Assign(models);

      for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                         size_t{9}, size_t{100}}) {
        const std::vector<RowEntry> row = RandomRow(len, rng);
        std::vector<double> out(n_models), out_scalar(n_models);
        std::vector<double> lanes(set.lane_scratch_size());
        RowDotMulti(row, set, transform, out.data(), lanes.data());
        RowDotMultiScalar(row, set, transform, out_scalar.data(),
                          lanes.data());
        for (size_t m = 0; m < n_models; ++m) {
          const double single = RowDot(row, storage[m], transform);
          EXPECT_EQ(out[m], single)
              << "multi vs single, " << n_models << " models, len " << len
              << ", model " << m;
          EXPECT_EQ(out_scalar[m], single)
              << "scalar multi vs single, " << n_models << " models, len "
              << len << ", model " << m;
        }
      }
    }
  }
}

TEST(ScoreKernels, KernelNamesAreStable) {
  EXPECT_STREQ(KernelName(KernelKind::kScalar), "scalar");
  EXPECT_STREQ(KernelName(KernelKind::kAvx2Fma), "avx2+fma");
  // Whatever dispatch picked, it must name itself.
  EXPECT_NE(KernelName(ActiveKernel()), nullptr);
}

}  // namespace
}  // namespace metaprox::kernels
