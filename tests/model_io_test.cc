// Model persistence: save/load must round-trip weights bit for bit (that
// is what makes a served loaded model byte-identical to the freshly
// trained one), and every corrupt-artifact shape must fail loudly with
// the right error class.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "learning/model_io.h"

namespace metaprox {
namespace {

MgpModel AwkwardModel() {
  // Values chosen to break any formatting shortcut: non-terminating
  // binary fractions, denormals, huge/small magnitudes, negative zero.
  MgpModel model;
  model.weights = {0.1,     1.0 / 3.0, 0.0,    -0.0,   5e-324,
                   1e308,   2.2250738585072014e-308,   0.30000000000000004,
                   123456.789012345678};
  return model;
}

TEST(ModelIo, StreamRoundTripIsBitwiseExact) {
  const MgpModel model = AwkwardModel();
  std::stringstream buffer;
  ASSERT_TRUE(WriteMgpModel(model, buffer).ok());
  auto loaded = ReadMgpModel(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->weights.size(), model.weights.size());
  for (size_t i = 0; i < model.weights.size(); ++i) {
    // Bit-level comparison: 0.0 == -0.0 under operator==, but the
    // serving contract is "the same model", not "an equal-looking one".
    EXPECT_EQ(std::signbit(loaded->weights[i]),
              std::signbit(model.weights[i]))
        << i;
    EXPECT_EQ(loaded->weights[i], model.weights[i]) << i;
  }
}

TEST(ModelIo, FileRoundTripAndWeightCountCheck) {
  const MgpModel model = AwkwardModel();
  const std::string path = ::testing::TempDir() + "/model_io_test.model";
  ASSERT_TRUE(SaveModel(model, path).ok());

  auto loaded = LoadModel(path, model.weights.size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->weights, model.weights);

  // The count check: a model trained against a different offline phase
  // must be rejected, not served.
  auto mismatched = LoadModel(path, model.weights.size() + 1);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), util::StatusCode::kInvalidArgument);

  // 0 skips the check.
  EXPECT_TRUE(LoadModel(path, 0).ok());
}

TEST(ModelIo, MissingFileIsNotFound) {
  auto loaded = LoadModel(::testing::TempDir() + "/does_not_exist.model");
  ASSERT_FALSE(loaded.ok());
  // NotFound specifically: the load-or-train-and-save path retrains ONLY
  // on this code; anything else must propagate.
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST(ModelIo, CorruptArtifactsAreInvalidArgument) {
  const std::vector<std::string> corrupt = {
      "",                                     // empty
      "not a model\n3\n1\n2\n3\n",            // wrong magic
      "metaprox-model v2\n1\n1\n",            // future version
      "metaprox-model v1\n",                  // missing count
      "metaprox-model v1\nthree\n",           // non-numeric count
      "metaprox-model v1\n-5\n",              // signed count (istream would
                                              // wrap it; strict parse won't)
      "metaprox-model v1\n99999999999999999999999\n1\n",  // overflow count
      "metaprox-model v1\n9999999999\n1\n",   // absurd count, no giant alloc
      "metaprox-model v1\n3\n1\n2\n",         // fewer weights than declared
      "metaprox-model v1\n2\n1\nx\n",         // non-numeric weight
      "metaprox-model v1\n1\n1\n2\n",         // trailing data
  };
  for (const std::string& text : corrupt) {
    std::stringstream buffer(text);
    auto loaded = ReadMgpModel(buffer);
    ASSERT_FALSE(loaded.ok()) << text;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument)
        << text;
  }
}

TEST(ModelIo, EmptyModelRoundTrips) {
  std::stringstream buffer;
  ASSERT_TRUE(WriteMgpModel(MgpModel{}, buffer).ok());
  auto loaded = ReadMgpModel(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->weights.empty());
}

}  // namespace
}  // namespace metaprox
