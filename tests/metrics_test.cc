#include <gtest/gtest.h>

#include <cmath>

#include "eval/evaluate.h"
#include "eval/metrics.h"

namespace metaprox {
namespace {

TEST(Ndcg, PerfectRanking) {
  std::vector<NodeId> ranked = {1, 2, 3};
  std::unordered_set<NodeId> relevant = {1, 2, 3};
  EXPECT_DOUBLE_EQ(NdcgAtK(ranked, relevant, 3, 10), 1.0);
}

TEST(Ndcg, WorstRankingZero) {
  std::vector<NodeId> ranked = {4, 5, 6};
  std::unordered_set<NodeId> relevant = {1, 2};
  EXPECT_DOUBLE_EQ(NdcgAtK(ranked, relevant, 2, 10), 0.0);
}

TEST(Ndcg, KnownPartialValue) {
  // Relevant at positions 1 and 3 (0-based 0 and 2); one relevant missing.
  std::vector<NodeId> ranked = {1, 9, 2};
  std::unordered_set<NodeId> relevant = {1, 2, 3};
  double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(4.0);
  double idcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0) +
                1.0 / std::log2(4.0);
  EXPECT_NEAR(NdcgAtK(ranked, relevant, 3, 10), dcg / idcg, 1e-12);
}

TEST(Ndcg, RespectsCutoff) {
  // Relevant node beyond k contributes nothing.
  std::vector<NodeId> ranked = {9, 8, 1};
  std::unordered_set<NodeId> relevant = {1};
  EXPECT_DOUBLE_EQ(NdcgAtK(ranked, relevant, 1, 2), 0.0);
  EXPECT_GT(NdcgAtK(ranked, relevant, 1, 3), 0.0);
}

TEST(Ndcg, NoRelevantIsZero) {
  std::vector<NodeId> ranked = {1};
  std::unordered_set<NodeId> relevant;
  EXPECT_DOUBLE_EQ(NdcgAtK(ranked, relevant, 0, 10), 0.0);
}

TEST(Ap, PerfectPrefix) {
  std::vector<NodeId> ranked = {1, 2};
  std::unordered_set<NodeId> relevant = {1, 2};
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(ranked, relevant, 2, 10), 1.0);
}

TEST(Ap, KnownValue) {
  // Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  std::vector<NodeId> ranked = {1, 9, 2};
  std::unordered_set<NodeId> relevant = {1, 2};
  EXPECT_NEAR(AveragePrecisionAtK(ranked, relevant, 2, 10),
              (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(Ap, NormalizerCappedByK) {
  // 5 relevant total but k=2: perfect prefix of 2 scores 1.
  std::vector<NodeId> ranked = {1, 2};
  std::unordered_set<NodeId> relevant = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(ranked, relevant, 5, 2), 1.0);
}

TEST(Ap, MissesScoreZero) {
  std::vector<NodeId> ranked = {7, 8};
  std::unordered_set<NodeId> relevant = {1};
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(ranked, relevant, 1, 10), 0.0);
}

TEST(EvaluateRanker, AveragesOverQueries) {
  GroundTruth gt("test");
  gt.AddPositivePair(0, 1);
  gt.AddPositivePair(2, 3);
  gt.Finalize();
  // A ranker that answers perfectly for query 0 and wrongly for query 2.
  Ranker ranker = [](NodeId q) -> std::vector<NodeId> {
    if (q == 0) return {1};
    return {9};
  };
  std::vector<NodeId> queries = {0, 2};
  EvalResult result = EvaluateRanker(gt, queries, ranker, 10);
  EXPECT_EQ(result.num_queries, 2u);
  EXPECT_DOUBLE_EQ(result.ndcg, 0.5);
  EXPECT_DOUBLE_EQ(result.map, 0.5);
}

TEST(GroundTruthTest, PairsAndQueries) {
  GroundTruth gt("family");
  gt.AddPositivePair(1, 2);
  gt.AddPositivePair(2, 5);
  gt.AddPositivePair(1, 2);  // duplicate ignored
  gt.Finalize();
  EXPECT_EQ(gt.num_positive_pairs(), 2u);
  EXPECT_TRUE(gt.IsPositive(1, 2));
  EXPECT_TRUE(gt.IsPositive(2, 1));
  EXPECT_FALSE(gt.IsPositive(1, 5));
  EXPECT_EQ(gt.queries().size(), 3u);
  EXPECT_EQ(gt.RelevantTo(2).size(), 2u);
  EXPECT_TRUE(gt.RelevantTo(9).empty());
}

}  // namespace
}  // namespace metaprox
