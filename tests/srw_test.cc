#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/srw.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

TEST(Srw, PprIsDistribution) {
  auto toy = testing::MakeToyGraph();
  SupervisedRandomWalk srw(toy.graph, SrwOptions{});
  std::vector<double> p = srw.Ppr(toy.kate);
  ASSERT_EQ(p.size(), toy.graph.num_nodes());
  double sum = std::accumulate(p.begin(), p.end(), 0.0);
  // Scores are scaled by n; the underlying distribution sums to 1.
  EXPECT_NEAR(sum / static_cast<double>(toy.graph.num_nodes()), 1.0, 1e-9);
  for (double v : p) EXPECT_GE(v, 0.0);
}

TEST(Srw, QueryHasHighScore) {
  auto toy = testing::MakeToyGraph();
  SupervisedRandomWalk srw(toy.graph, SrwOptions{});
  std::vector<double> p = srw.Ppr(toy.kate);
  for (NodeId v = 0; v < toy.graph.num_nodes(); ++v) {
    if (v != toy.kate) {
      EXPECT_GE(p[toy.kate], p[v]);
    }
  }
}

TEST(Srw, NeighborsScoreHigherThanDistantNodes) {
  auto toy = testing::MakeToyGraph();
  SupervisedRandomWalk srw(toy.graph, SrwOptions{});
  std::vector<double> p = srw.Ppr(toy.kate);
  // College A (direct neighbor) must outrank Tom (two hops away through
  // sparse paths).
  EXPECT_GT(p[toy.college_a], p[toy.tom]);
}

TEST(Srw, FeaturesCoverOccurringTypePairs) {
  auto toy = testing::MakeToyGraph();
  SupervisedRandomWalk srw(toy.graph, SrwOptions{});
  // Toy graph has user-{surname,address,school,major,employer,hobby} edges:
  // 6 distinct unordered type pairs, no user-user edges.
  EXPECT_EQ(srw.num_features(), 6u);
}

TEST(Srw, TrainingMovesThetaTowardDiscriminativeEdges) {
  auto toy = testing::MakeToyGraph();
  SrwOptions options;
  options.train_iterations = 15;
  options.learning_rate = 1.0;
  SupervisedRandomWalk srw(toy.graph, options);

  // Prefer classmates: push walks through school/major, away from hobby.
  std::vector<Example> examples = {
      {toy.kate, toy.jay, toy.alice},
      {toy.bob, toy.tom, toy.alice},
  };
  std::vector<double> before = srw.theta();
  srw.Train(examples);
  std::vector<double> after = srw.theta();
  ASSERT_EQ(before.size(), after.size());
  bool changed = false;
  for (size_t i = 0; i < before.size(); ++i) {
    changed |= std::abs(after[i] - before[i]) > 1e-9;
  }
  EXPECT_TRUE(changed);

  // Training should improve the preference margin for the examples.
  std::vector<double> p_kate = srw.Ppr(toy.kate);
  EXPECT_GT(p_kate[toy.jay], p_kate[toy.alice]);
}

TEST(Srw, RankExcludesQueryAndFiltersType) {
  auto toy = testing::MakeToyGraph();
  SupervisedRandomWalk srw(toy.graph, SrwOptions{});
  auto ranked = srw.Rank(toy.kate, toy.user, 10);
  EXPECT_LE(ranked.size(), 4u);  // 5 users minus the query
  for (const auto& [node, score] : ranked) {
    EXPECT_NE(node, toy.kate);
    EXPECT_EQ(toy.graph.TypeOf(node), toy.user);
  }
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].second, ranked[i].second);
  }
}

TEST(Srw, EmptyTrainingIsNoOp) {
  auto toy = testing::MakeToyGraph();
  SupervisedRandomWalk srw(toy.graph, SrwOptions{});
  std::vector<double> before = srw.theta();
  srw.Train({});
  EXPECT_EQ(before, srw.theta());
}

}  // namespace
}  // namespace metaprox
