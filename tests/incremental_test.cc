// The incremental-maintenance path end to end, offline side: GraphDelta
// append/apply determinism, the affected-metagraph computation that makes
// a refresh sound, IndexMaintainer refreshes that must be byte-identical
// to full rebuilds, snapshot pinning across generations, builder misuse
// errors, and the time-sliced arrival replay that feeds the bench and the
// server smoke.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/index_maintainer.h"
#include "datagen/arrival.h"
#include "datagen/facebook.h"
#include "graph/graph_builder.h"
#include "graph/graph_delta.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

// A small matched engine over the facebook generator — the shared base
// of the maintainer tests (each test builds its own maintainer; the
// engine itself is never mutated).
struct Base {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  std::vector<NodeId> users;
};

const Base& SharedBase() {
  static const Base* base = [] {
    auto* b = new Base();
    datagen::FacebookConfig cfg;
    cfg.num_users = 100;
    b->ds = datagen::GenerateFacebook(cfg, 11);
    EngineOptions options;
    options.miner.anchor_type = b->ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    b->engine = std::make_unique<SearchEngine>(b->ds.graph, options);
    b->engine->Mine();
    b->engine->MatchAll();
    auto pool = b->ds.graph.NodesOfType(b->ds.user_type);
    b->users.assign(pool.begin(), pool.end());
    return b;
  }();
  return *base;
}

std::string IndexBytes(const MetagraphVectorIndex& index) {
  std::ostringstream os;
  EXPECT_TRUE(index.WriteTo(os).ok());
  return os.str();
}

/// Re-matches every metagraph of `engine` over `graph` from scratch — the
/// oracle a refresh must be indistinguishable from.
MetagraphVectorIndex RebuildAll(const SearchEngine& engine,
                                const Graph& graph) {
  const auto& mined = engine.metagraphs();
  MetagraphVectorIndex index(mined.size(), graph.num_nodes(),
                             engine.index().transform(), /*num_shards=*/1);
  auto matcher = CreateMatcher(engine.options().matcher);
  for (uint32_t i = 0; i < mined.size(); ++i) {
    SymPairCountingSink sink(mined[i].symmetry,
                             engine.options().embedding_cap);
    matcher->Match(graph, mined[i].graph, &sink);
    index.Commit(i, sink, mined[i].symmetry.aut_size());
  }
  index.Seal();
  index.Finalize();
  return index;
}

// ---- GraphDelta -----------------------------------------------------------

TEST(GraphDelta, AssignsIdsUpFrontAndValidatesEdges) {
  auto t = testing::MakeToyGraph();
  GraphDelta delta(t.graph.num_nodes());
  const NodeId a = delta.AddNode("user", "Zoe");
  const NodeId b = delta.AddNode("hobby", "Chess");
  EXPECT_EQ(a, t.graph.num_nodes());
  EXPECT_EQ(b, t.graph.num_nodes() + 1);

  EXPECT_TRUE(delta.AddEdge(t.alice, a).ok());   // existing <-> new
  EXPECT_TRUE(delta.AddEdge(a, b).ok());         // new <-> new
  EXPECT_FALSE(delta.AddEdge(a, a).ok());        // self-loop
  EXPECT_FALSE(delta.AddEdge(b + 1, a).ok());    // beyond the delta
  EXPECT_EQ(delta.edges.size(), 2u);
}

TEST(GraphDelta, ApplyEqualsFromScratchBuild) {
  auto t = testing::MakeToyGraph();
  GraphDelta delta(t.graph.num_nodes());
  const NodeId zoe = delta.AddNode("user", "Zoe");
  ASSERT_TRUE(delta.AddEdge(zoe, t.alice).ok());
  ASSERT_TRUE(delta.AddEdge(zoe, t.college_a).ok());
  ASSERT_TRUE(delta.AddEdge(t.tom, t.music).ok());  // between existing nodes

  auto grown = ApplyDelta(t.graph, delta);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();

  // From scratch: the toy graph's content plus the delta's, one builder.
  auto t2 = testing::MakeToyGraph();  // fresh builder state, same content
  GraphBuilder scratch;
  for (const std::string& name : t.graph.type_registry().names()) {
    scratch.InternType(name);
  }
  for (NodeId v = 0; v < t.graph.num_nodes(); ++v) {
    scratch.AddNode(t.graph.TypeOf(v), t.graph.NameOf(v));
  }
  const NodeId zoe2 = scratch.AddNode(t2.user, "Zoe");
  for (NodeId v = 0; v < t.graph.num_nodes(); ++v) {
    for (NodeId w : t.graph.Neighbors(v)) {
      if (v < w) {
        ASSERT_TRUE(scratch.AddEdge(v, w).ok());
      }
    }
  }
  ASSERT_TRUE(scratch.AddEdge(zoe2, t2.alice).ok());
  ASSERT_TRUE(scratch.AddEdge(zoe2, t2.college_a).ok());
  ASSERT_TRUE(scratch.AddEdge(t2.tom, t2.music).ok());
  Graph expected = scratch.Build();

  ASSERT_EQ(grown->num_nodes(), expected.num_nodes());
  ASSERT_EQ(grown->num_edges(), expected.num_edges());
  for (NodeId v = 0; v < expected.num_nodes(); ++v) {
    EXPECT_EQ(grown->TypeOf(v), expected.TypeOf(v)) << "node " << v;
    auto a = grown->Neighbors(v);
    auto b = expected.Neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "node " << v;
  }
}

TEST(GraphDelta, ApplyRefusesAMisprimedDelta) {
  auto t = testing::MakeToyGraph();
  GraphDelta delta(t.graph.num_nodes() + 3);  // primed against a bigger graph
  delta.AddNode("user");
  auto grown = ApplyDelta(t.graph, delta);
  EXPECT_FALSE(grown.ok());
}

// ---- GraphBuilder misuse --------------------------------------------------

TEST(GraphBuilder, AddEdgeAfterBuildIsAStructuredError) {
  GraphBuilder builder;
  const TypeId user = builder.InternType("user");
  const NodeId a = builder.AddNode(user);
  const NodeId b = builder.AddNode(user);
  ASSERT_TRUE(builder.AddEdge(a, b).ok());
  Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);

  auto status = builder.AddEdge(a, b);
  EXPECT_FALSE(status.ok());
  // The error must route the caller to the supported path.
  EXPECT_NE(status.ToString().find("GraphDelta"), std::string::npos)
      << status.ToString();

  // Build() hands its content to the graph; a fresh AddNode re-arms the
  // builder for a NEW graph from scratch (types re-interned).
  const TypeId user_again = builder.InternType("user");
  const NodeId c = builder.AddNode(user_again);
  const NodeId d = builder.AddNode(user_again);
  EXPECT_TRUE(builder.AddEdge(c, d).ok());
}

// ---- AffectedMetagraphs ---------------------------------------------------

TEST(AffectedMetagraphs, ExactlyTheTypePairMatches) {
  const Base& base = SharedBase();
  const Graph& g = base.ds.graph;
  const auto& mined = base.engine->metagraphs();
  ASSERT_FALSE(mined.empty());

  GraphDelta delta(g.num_nodes());
  ASSERT_TRUE(delta.AddEdge(base.users[0], base.users[1]).ok());

  const auto affected =
      IndexMaintainer::AffectedMetagraphs(g, mined, delta);
  // Independent oracle: a metagraph is affected iff it has a user-user
  // edge (the only type pair the delta adds).
  const TypeId user = base.ds.user_type;
  for (uint32_t i = 0; i < mined.size(); ++i) {
    bool has_pair = false;
    for (auto [a, b] : mined[i].graph.Edges()) {
      if (mined[i].graph.TypeOf(a) == user &&
          mined[i].graph.TypeOf(b) == user) {
        has_pair = true;
      }
    }
    const bool listed =
        std::find(affected.begin(), affected.end(), i) != affected.end();
    EXPECT_EQ(listed, has_pair) << "metagraph " << i;
  }
  EXPECT_TRUE(std::is_sorted(affected.begin(), affected.end()));

  // An empty delta affects nothing.
  GraphDelta none(g.num_nodes());
  EXPECT_TRUE(IndexMaintainer::AffectedMetagraphs(g, mined, none).empty());
}

// ---- IndexMaintainer ------------------------------------------------------

TEST(IndexMaintainer, RefreshIsByteIdenticalToFullRebuild) {
  const Base& base = SharedBase();
  IndexMaintainer maintainer(*base.engine);

  // A mixed delta: one new user wired into the graph plus a new edge
  // between existing users.
  const NodeId fresh = maintainer.AppendNode("user", "newcomer");
  EXPECT_EQ(fresh, base.ds.graph.num_nodes());
  ASSERT_TRUE(maintainer.AppendEdge(fresh, base.users[2]).ok());
  ASSERT_TRUE(maintainer.AppendEdge(fresh, base.users[5]).ok());
  ASSERT_TRUE(maintainer.AppendEdge(base.users[0], base.users[7]).ok());

  RefreshStats stats;
  auto refreshed = maintainer.Refresh(&stats);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(stats.appended_nodes, 1u);
  EXPECT_EQ(stats.appended_edges, 3u);
  EXPECT_GT(stats.affected_metagraphs, 0u);
  EXPECT_LE(stats.affected_metagraphs, base.engine->metagraphs().size());
  EXPECT_EQ((*refreshed)->generation(), 2u);
  EXPECT_EQ((*refreshed)->graph().num_nodes(),
            base.ds.graph.num_nodes() + 1);

  MetagraphVectorIndex rebuilt =
      RebuildAll(*base.engine, (*refreshed)->graph());
  EXPECT_EQ(IndexBytes((*refreshed)->index()), IndexBytes(rebuilt));
}

TEST(IndexMaintainer, RepeatedRefreshesStayByteIdentical) {
  const Base& base = SharedBase();
  IndexMaintainer maintainer(*base.engine);
  for (int round = 0; round < 3; ++round) {
    // Built in two steps: `"r" + std::to_string(...)` trips GCC 12's
    // bogus -Wrestrict on the rvalue operator+ overload.
    std::string name = "r";
    name += std::to_string(round);
    const NodeId fresh = maintainer.AppendNode("user", name);
    ASSERT_TRUE(
        maintainer.AppendEdge(fresh, base.users[round * 3]).ok());
    auto refreshed = maintainer.Refresh();
    ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
    MetagraphVectorIndex rebuilt =
        RebuildAll(*base.engine, (*refreshed)->graph());
    ASSERT_EQ(IndexBytes((*refreshed)->index()), IndexBytes(rebuilt))
        << "round " << round;
  }
  EXPECT_EQ(maintainer.snapshot()->generation(), 4u);
}

TEST(IndexMaintainer, PinnedSnapshotsOutliveRefreshes) {
  const Base& base = SharedBase();
  IndexMaintainer maintainer(*base.engine);
  std::vector<double> w(base.engine->metagraphs().size(), 1.0);
  MgpModel model{w};

  auto pinned = maintainer.snapshot();
  const QueryResult before = pinned->Query(model, base.users[0], 10);

  ASSERT_TRUE(maintainer.AppendEdge(base.users[0], base.users[9]).ok());
  auto refreshed = maintainer.Refresh();
  ASSERT_TRUE(refreshed.ok());
  ASSERT_NE(pinned.get(), refreshed->get());

  // The pinned generation answers exactly as before the refresh.
  const QueryResult after = pinned->Query(model, base.users[0], 10);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].first, before[i].first);
    EXPECT_EQ(after[i].second, before[i].second);
  }
}

TEST(IndexMaintainer, AppendValidatesAgainstBufferedState) {
  const Base& base = SharedBase();
  IndexMaintainer maintainer(*base.engine);
  const size_t n = base.ds.graph.num_nodes();

  EXPECT_FALSE(maintainer.AppendEdge(0, 0).ok());
  EXPECT_FALSE(maintainer.AppendEdge(0, static_cast<NodeId>(n)).ok());

  // A delta primed against a stale node count is refused whole.
  GraphDelta stale(n + 5);
  stale.AddNode("user");
  EXPECT_FALSE(maintainer.Append(stale).ok());

  // Primed correctly, the same content is accepted — including an edge to
  // a node buffered by AppendNode before it.
  const NodeId buffered = maintainer.AppendNode("user");
  GraphDelta delta(maintainer.num_nodes());
  const NodeId added = delta.AddNode("user");
  ASSERT_TRUE(delta.AddEdge(buffered, added).ok());
  EXPECT_TRUE(maintainer.Append(delta).ok());
  EXPECT_EQ(maintainer.pending_nodes(), 2u);
  EXPECT_EQ(maintainer.pending_edges(), 1u);
}

// ---- arrival timelines ----------------------------------------------------

TEST(ArrivalTimeline, ReplayReconstructsTheFullDataset) {
  const Base& base = SharedBase();
  const Graph& full = base.ds.graph;
  datagen::ArrivalConfig config;
  config.num_slices = 3;
  config.base_fraction = 0.5;
  auto timeline =
      datagen::SliceByArrival(full, base.ds.user_type, config);
  ASSERT_EQ(timeline.slices.size(), 3u);
  EXPECT_LT(timeline.base.num_nodes(), full.num_nodes());

  // Only anchor-type nodes arrive late; infrastructure is in the base.
  for (TypeId t = 0; t < full.num_types(); ++t) {
    if (t == base.ds.user_type) continue;
    EXPECT_EQ(timeline.base.CountOfType(t), full.CountOfType(t))
        << "type " << t;
  }

  Graph grown = timeline.base;
  for (const GraphDelta& slice : timeline.slices) {
    EXPECT_FALSE(slice.empty());
    ASSERT_EQ(slice.base_nodes(), grown.num_nodes());
    auto next = ApplyDelta(grown, slice);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    grown = std::move(*next);
  }

  // Fully replayed, the graph is the full dataset under a renumbering:
  // same sizes, same per-type node counts, same per-type-pair edge
  // counts, same sorted degree sequence.
  ASSERT_EQ(grown.num_nodes(), full.num_nodes());
  ASSERT_EQ(grown.num_edges(), full.num_edges());
  for (TypeId t = 0; t < full.num_types(); ++t) {
    EXPECT_EQ(grown.CountOfType(t), full.CountOfType(t)) << "type " << t;
    for (TypeId u = t; u < full.num_types(); ++u) {
      EXPECT_EQ(grown.EdgeCountBetweenTypes(t, u),
                full.EdgeCountBetweenTypes(t, u))
          << "types " << t << "," << u;
    }
  }
  std::vector<size_t> a(grown.num_nodes()), b(full.num_nodes());
  for (NodeId v = 0; v < full.num_nodes(); ++v) {
    a[v] = grown.Degree(v);
    b[v] = full.Degree(v);
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ArrivalTimeline, RefreshingThroughATimelineMatchesRebuilds) {
  // The bench's gate in miniature: maintain the base engine through every
  // slice and byte-check against a rebuild at the end state.
  const Base& base = SharedBase();
  datagen::ArrivalConfig config;
  config.num_slices = 2;
  auto timeline =
      datagen::SliceByArrival(base.ds.graph, base.ds.user_type, config);

  EngineOptions options = base.engine->options();
  SearchEngine engine(timeline.base, options);
  engine.Mine();
  engine.MatchAll();
  IndexMaintainer maintainer(engine);
  for (const GraphDelta& slice : timeline.slices) {
    ASSERT_TRUE(maintainer.Append(slice).ok());
    auto refreshed = maintainer.Refresh();
    ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
    MetagraphVectorIndex rebuilt =
        RebuildAll(engine, (*refreshed)->graph());
    ASSERT_EQ(IndexBytes((*refreshed)->index()), IndexBytes(rebuilt));
  }
  EXPECT_EQ(maintainer.snapshot()->graph().num_nodes(),
            base.ds.graph.num_nodes());
}

}  // namespace
}  // namespace metaprox
