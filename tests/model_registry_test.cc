// The model registry: slot lifecycle (Load/Reload/Unload/List), snapshot
// immutability under hot-swap, weight-count validation, serve-counter
// continuity across reloads — and, under the `concurrency` ctest label
// (TSan in CI), readers holding snapshots while a writer swaps as fast as
// it can.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/model_registry.h"

namespace metaprox::server {
namespace {

MgpModel ModelWithValue(size_t num_weights, double value) {
  MgpModel model;
  model.weights.assign(num_weights, value);
  return model;
}

TEST(ModelRegistry, LoadGetListUnloadLifecycle) {
  ModelRegistry registry(4);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Get("family"), nullptr);

  auto version = registry.Load("family", ModelWithValue(4, 1.0));
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 1u);
  ASSERT_TRUE(registry.Load("classmate", ModelWithValue(4, 2.0)).ok());
  EXPECT_EQ(registry.size(), 2u);

  auto snapshot = registry.Get("family");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->name, "family");
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_EQ(snapshot->model.weights[0], 1.0);
  EXPECT_EQ(snapshot->serves_count(), 0u);

  // List is sorted by name.
  auto infos = registry.List();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "classmate");
  EXPECT_EQ(infos[1].name, "family");
  EXPECT_EQ(infos[1].num_weights, 4u);

  ASSERT_TRUE(registry.Unload("classmate").ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Get("classmate"), nullptr);
  EXPECT_FALSE(registry.Unload("classmate").ok());  // already gone
}

TEST(ModelRegistry, LoadRefusesDuplicatesBadNamesAndWrongCardinality) {
  ModelRegistry registry(4);
  ASSERT_TRUE(registry.Load("family", ModelWithValue(4, 1.0)).ok());

  // Duplicate name: Load is "publish NEW slot" — swapping is Reload's job.
  auto duplicate = registry.Load("family", ModelWithValue(4, 2.0));
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), util::StatusCode::kFailedPrecondition);
  // The refused load did not clobber the live slot.
  EXPECT_EQ(registry.Get("family")->model.weights[0], 1.0);

  EXPECT_FALSE(registry.Load("9digits", ModelWithValue(4, 1.0)).ok());
  EXPECT_FALSE(registry.Load("has space", ModelWithValue(4, 1.0)).ok());

  auto mismatch = registry.Load("other", ModelWithValue(3, 1.0));
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ModelRegistry, ReloadSwapsAtomicallyAndPreservesHeldSnapshots) {
  ModelRegistry registry(4);
  ASSERT_TRUE(registry.Load("family", ModelWithValue(4, 1.0)).ok());
  auto held = registry.Get("family");
  held->CountServed(5);

  auto version = registry.Reload("family", ModelWithValue(4, 2.0));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 2u);

  // The held (pre-swap) snapshot is untouched — in-flight batches finish
  // on the weights they started with.
  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(held->model.weights[0], 1.0);

  // New Gets see the new weights; the serve counter carried over (it
  // counts the NAME's traffic, not one snapshot's).
  auto fresh = registry.Get("family");
  EXPECT_EQ(fresh->version, 2u);
  EXPECT_EQ(fresh->model.weights[0], 2.0);
  EXPECT_EQ(fresh->serves_count(), 5u);
  // Counting through either snapshot hits the same counter.
  fresh->CountServed(1);
  EXPECT_EQ(held->serves_count(), 6u);

  // Reload of an absent slot is NotFound; Unload then re-Load resets the
  // version and the counter (a fresh slot, not a resurrected one).
  EXPECT_FALSE(registry.Reload("nope", ModelWithValue(4, 1.0)).ok());
  ASSERT_TRUE(registry.Unload("family").ok());
  ASSERT_TRUE(registry.Load("family", ModelWithValue(4, 3.0)).ok());
  EXPECT_EQ(registry.Get("family")->version, 1u);
  EXPECT_EQ(registry.Get("family")->serves_count(), 0u);
}

// Readers take and use snapshots while a writer hot-swaps continuously:
// every observed snapshot must be internally consistent (version k holds
// weight value k), no Get may return null for a name that is never
// unloaded, and the serve counter must lose no increment across swaps.
// TSan (ctest -L concurrency) checks the synchronization itself.
TEST(ModelRegistry, ConcurrentGetsRaceReloadsSafely) {
  constexpr size_t kWeights = 64;
  constexpr size_t kReaders = 4;
  constexpr size_t kGetsPerReader = 2000;
  constexpr uint64_t kSwaps = 500;

  ModelRegistry registry(kWeights);
  ASSERT_TRUE(registry.Load("family", ModelWithValue(kWeights, 1.0)).ok());

  std::atomic<bool> start{false};
  std::vector<std::string> failures(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!start.load()) std::this_thread::yield();
      for (size_t i = 0; i < kGetsPerReader; ++i) {
        auto snapshot = registry.Get("family");
        if (snapshot == nullptr) {
          failures[r] = "Get returned null for a live slot";
          return;
        }
        // Internal consistency: the swap is atomic, so a snapshot can
        // never mix one generation's version with another's weights.
        const double expected = static_cast<double>(snapshot->version);
        for (double w : snapshot->model.weights) {
          if (w != expected) {
            failures[r] = "snapshot mixes generations";
            return;
          }
        }
        snapshot->CountServed(1);
      }
    });
  }

  std::thread writer([&] {
    start.store(true);
    for (uint64_t s = 0; s < kSwaps; ++s) {
      // Version v carries weights v (the invariant readers check).
      auto version = registry.Reload(
          "family", ModelWithValue(kWeights, static_cast<double>(s + 2)));
      ASSERT_TRUE(version.ok());
    }
  });

  writer.join();
  for (auto& reader : readers) reader.join();
  for (size_t r = 0; r < kReaders; ++r) {
    EXPECT_TRUE(failures[r].empty()) << "reader " << r << ": " << failures[r];
  }
  // No increment lost across 500 swaps.
  EXPECT_EQ(registry.Get("family")->serves_count(),
            kReaders * kGetsPerReader);
  EXPECT_EQ(registry.Get("family")->version, kSwaps + 1);
}

}  // namespace
}  // namespace metaprox::server
