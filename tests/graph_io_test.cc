#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_io.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

TEST(GraphIo, RoundTripPreservesStructure) {
  auto toy = testing::MakeToyGraph();
  std::ostringstream os;
  ASSERT_TRUE(WriteGraph(toy.graph, os).ok());

  std::istringstream is(os.str());
  auto loaded = ReadGraph(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const Graph& g = *loaded;
  EXPECT_EQ(g.num_nodes(), toy.graph.num_nodes());
  EXPECT_EQ(g.num_edges(), toy.graph.num_edges());
  EXPECT_EQ(g.num_types(), toy.graph.num_types());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.TypeOf(v), toy.graph.TypeOf(v));
    EXPECT_EQ(g.NameOf(v), toy.graph.NameOf(v));
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = g.Neighbors(v);
    auto b = toy.graph.Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIo, RoundTripRandomGraph) {
  Graph g = testing::MakeRandomGraph(500, 6, 5.0, 99);
  std::ostringstream os;
  ASSERT_TRUE(WriteGraph(g, os).ok());
  std::istringstream is(os.str());
  auto loaded = ReadGraph(is);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
}

TEST(GraphIo, RejectsMissingHeader) {
  std::istringstream is("not a graph\n");
  auto loaded = ReadGraph(is);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphIo, RejectsBadNodeType) {
  std::istringstream is(
      "metaprox-graph v1\ntypes 1\nuser\nnodes 1\n5\nedges 0\n");
  auto loaded = ReadGraph(is);
  EXPECT_FALSE(loaded.ok());
}

TEST(GraphIo, RejectsOutOfRangeEdge) {
  std::istringstream is(
      "metaprox-graph v1\ntypes 1\nuser\nnodes 2\n0\n0\nedges 1\n0 5\n");
  auto loaded = ReadGraph(is);
  EXPECT_FALSE(loaded.ok());
}

TEST(GraphIo, RejectsTruncatedSections) {
  std::istringstream is("metaprox-graph v1\ntypes 2\nuser\n");
  auto loaded = ReadGraph(is);
  EXPECT_FALSE(loaded.ok());
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  std::istringstream is(
      "metaprox-graph v1\n# a comment\ntypes 1\nuser\n\nnodes 2\n0\n0 Bob\n"
      "# another\nedges 1\n0 1\n");
  auto loaded = ReadGraph(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), 2u);
  EXPECT_EQ(loaded->NameOf(1), "Bob");
}

TEST(GraphIo, FileRoundTrip) {
  auto toy = testing::MakeToyGraph();
  const std::string path = ::testing::TempDir() + "/toy_graph.txt";
  ASSERT_TRUE(WriteGraphToFile(toy.graph, path).ok());
  auto loaded = ReadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), toy.graph.num_edges());
}

TEST(GraphIo, MissingFileIsIoError) {
  auto loaded = ReadGraphFromFile("/nonexistent/path/graph.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

}  // namespace
}  // namespace metaprox
