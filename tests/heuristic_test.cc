// Tests for the dual-stage candidate heuristic's building blocks:
// per-metagraph pairwise accuracy and the cost-ordered component groups.
#include <gtest/gtest.h>

#include "learning/dual_stage.h"
#include "matching/matcher.h"
#include "matching/order.h"
#include "metagraph/decomposition.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

struct Fixture {
  testing::ToyGraph toy;
  std::unique_ptr<MetagraphVectorIndex> index;
  // 0=surname 1=address 2=school 3=major 4=employer 5=hobby
};

Fixture MakeFixture() {
  Fixture f{testing::MakeToyGraph(), nullptr};
  std::vector<Metagraph> metagraphs = {
      MakePath({f.toy.user, f.toy.surname, f.toy.user}),
      MakePath({f.toy.user, f.toy.address, f.toy.user}),
      MakePath({f.toy.user, f.toy.school, f.toy.user}),
      MakePath({f.toy.user, f.toy.major, f.toy.user}),
      MakePath({f.toy.user, f.toy.employer, f.toy.user}),
      MakePath({f.toy.user, f.toy.hobby, f.toy.user})};
  f.index = std::make_unique<MetagraphVectorIndex>(
      metagraphs.size(), f.toy.graph.num_nodes(), CountTransform::kRaw);
  auto matcher = CreateMatcher(MatcherKind::kSymISO);
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
    SymPairCountingSink sink(sym, UINT64_MAX);
    matcher->Match(f.toy.graph, metagraphs[i], &sink);
    f.index->Commit(i, sink, sym.aut_size());
  }
  f.index->Finalize();
  return f;
}

TEST(PerMetagraphAccuracy, ClassmateExamplesFavorSchoolAndMajor) {
  Fixture f = MakeFixture();
  std::vector<Example> examples = {
      {f.toy.kate, f.toy.jay, f.toy.alice},
      {f.toy.kate, f.toy.jay, f.toy.bob},
      {f.toy.bob, f.toy.tom, f.toy.alice},
      {f.toy.bob, f.toy.tom, f.toy.kate},
  };
  std::vector<uint32_t> all = {0, 1, 2, 3, 4, 5};
  auto scores = PerMetagraphPairwiseAccuracy(*f.index, examples, all);
  ASSERT_EQ(scores.size(), 6u);
  // School (2) and major (3) separate every example; surname (0) separates
  // none of them positively.
  EXPECT_DOUBLE_EQ(scores[2], 1.0);
  EXPECT_DOUBLE_EQ(scores[3], 1.0);
  EXPECT_LT(scores[0], 0.5);
  EXPECT_LT(scores[5], scores[2]);  // hobby only helps Kate, not Bob
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(PerMetagraphAccuracy, RestrictedIndicesOnly) {
  Fixture f = MakeFixture();
  std::vector<Example> examples = {{f.toy.kate, f.toy.jay, f.toy.alice}};
  std::vector<uint32_t> subset = {2};
  auto scores = PerMetagraphPairwiseAccuracy(*f.index, examples, subset);
  EXPECT_GT(scores[2], 0.0);
  for (uint32_t i : {0u, 1u, 3u, 4u, 5u}) {
    EXPECT_DOUBLE_EQ(scores[i], 0.0);
  }
}

TEST(PerMetagraphAccuracy, EmptyInputs) {
  Fixture f = MakeFixture();
  std::vector<uint32_t> all = {0, 1};
  EXPECT_TRUE(PerMetagraphPairwiseAccuracy(*f.index, {}, all)
                  .empty() == false);  // sized vector of zeros
  auto scores = PerMetagraphPairwiseAccuracy(*f.index, {}, all);
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(CostOrderGroupsTest, CoversAllNodesOnce) {
  auto toy = testing::MakeToyGraph();
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)),
        toy.graph.num_types(), rng);
    auto decomp = DecomposeSymmetricComponents(m, AnalyzeSymmetry(m));
    auto groups = CostOrderGroups(toy.graph, m, decomp);
    uint8_t covered = 0;
    for (const auto& g : groups) {
      for (MetaNodeId v : g.rep) {
        EXPECT_FALSE((covered >> v) & 1u);
        covered |= static_cast<uint8_t>(1u << v);
      }
      for (MetaNodeId v : g.mirror) {
        EXPECT_FALSE((covered >> v) & 1u);
        covered |= static_cast<uint8_t>(1u << v);
      }
    }
    EXPECT_EQ(covered, static_cast<uint8_t>((1u << m.num_nodes()) - 1));
  }
}

TEST(CostOrderGroupsTest, DelaysMirrorUntilConstrained) {
  // M1: school + major joining two users. The cheap plan matches both
  // attribute singletons before the user mirror pair.
  auto toy = testing::MakeToyGraph();
  Metagraph m;
  MetaNodeId u1 = m.AddNode(toy.user);
  MetaNodeId u2 = m.AddNode(toy.user);
  MetaNodeId s = m.AddNode(toy.school);
  MetaNodeId j = m.AddNode(toy.major);
  m.AddEdge(u1, s);
  m.AddEdge(u2, s);
  m.AddEdge(u1, j);
  m.AddEdge(u2, j);
  auto decomp = DecomposeSymmetricComponents(m, AnalyzeSymmetry(m));
  auto groups = CostOrderGroups(toy.graph, m, decomp);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_FALSE(groups[0].has_mirror());
  EXPECT_FALSE(groups[1].has_mirror());
  EXPECT_TRUE(groups[2].has_mirror());
}

TEST(CostOrderGroupsTest, MirrorAlignmentPreserved) {
  auto toy = testing::MakeToyGraph();
  util::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        3 + static_cast<int>(rng.UniformInt(3)), 2, rng);
    auto sym = AnalyzeSymmetry(m);
    auto decomp = DecomposeSymmetricComponents(m, sym);
    auto groups = CostOrderGroups(toy.graph, m, decomp);
    for (const auto& g : groups) {
      if (!g.has_mirror()) continue;
      ASSERT_EQ(g.rep.size(), g.mirror.size());
      for (size_t i = 0; i < g.rep.size(); ++i) {
        EXPECT_EQ(m.TypeOf(g.rep[i]), m.TypeOf(g.mirror[i]));
        EXPECT_TRUE(sym.IsSymmetricPair(g.rep[i], g.mirror[i]) ||
                    sym.IsSymmetricNode(g.rep[i]));
      }
    }
  }
}

}  // namespace
}  // namespace metaprox
