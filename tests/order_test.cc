#include <gtest/gtest.h>

#include <algorithm>

#include "matching/order.h"
#include "metagraph/decomposition.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace metaprox {
namespace {

bool IsPermutation(const std::vector<MetaNodeId>& order, int n) {
  if (static_cast<int>(order.size()) != n) return false;
  uint8_t seen = 0;
  for (MetaNodeId v : order) {
    if (v >= n || ((seen >> v) & 1u)) return false;
    seen |= static_cast<uint8_t>(1u << v);
  }
  return true;
}

// Every node after the first must touch an earlier node (for connected m).
bool IsConnectivityPreserving(const Metagraph& m,
                              const std::vector<MetaNodeId>& order) {
  uint8_t matched = static_cast<uint8_t>(1u << order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    if (!(m.NeighborMask(order[i]) & matched)) return false;
    matched |= static_cast<uint8_t>(1u << order[i]);
  }
  return true;
}

TEST(GreedyOrder, ValidPermutationAndConnected) {
  auto toy = testing::MakeToyGraph();
  util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)),
        toy.graph.num_types(), rng);
    auto order = GreedyNodeOrder(toy.graph, m);
    EXPECT_TRUE(IsPermutation(order, m.num_nodes()));
    EXPECT_TRUE(IsConnectivityPreserving(m, order));
  }
}

TEST(GreedyOrder, StartsWithMostSelectiveEdge) {
  auto toy = testing::MakeToyGraph();
  // user-surname (2 edges) is rarer than user-school (4 edges).
  Metagraph m;
  MetaNodeId u1 = m.AddNode(toy.user);
  MetaNodeId u2 = m.AddNode(toy.user);
  MetaNodeId sn = m.AddNode(toy.surname);
  MetaNodeId sc = m.AddNode(toy.school);
  m.AddEdge(u1, sn);
  m.AddEdge(u2, sn);
  m.AddEdge(u1, sc);
  m.AddEdge(u2, sc);
  auto order = GreedyNodeOrder(toy.graph, m);
  // The first two nodes must be the endpoints of a user-surname edge.
  TypeId t0 = m.TypeOf(order[0]);
  TypeId t1 = m.TypeOf(order[1]);
  EXPECT_TRUE((t0 == toy.user && t1 == toy.surname) ||
              (t0 == toy.surname && t1 == toy.user));
  // The rarer endpoint (surname: 1 node vs 5 users) comes first.
  EXPECT_EQ(t0, toy.surname);
}

TEST(RandomOrder, ValidAndConnected) {
  util::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)), 3, rng);
    auto order = RandomNodeOrder(m, rng);
    EXPECT_TRUE(IsPermutation(order, m.num_nodes()));
    EXPECT_TRUE(IsConnectivityPreserving(m, order));
  }
}

TEST(RandomOrder, VariesWithSeed) {
  util::Rng mg_rng(5);
  Metagraph m = testing::MakeRandomMetagraph(5, 1, mg_rng);
  util::Rng r1(1), r2(2);
  int diffs = 0;
  for (int i = 0; i < 10; ++i) {
    if (RandomNodeOrder(m, r1) != RandomNodeOrder(m, r2)) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(OrderGroups, RespectsNodeOrderPositions) {
  // M1-like: mirror pair {0,1} and singletons {2}, {3}.
  Metagraph m;
  MetaNodeId u1 = m.AddNode(0);
  MetaNodeId u2 = m.AddNode(0);
  MetaNodeId s = m.AddNode(1);
  MetaNodeId j = m.AddNode(2);
  m.AddEdge(u1, s);
  m.AddEdge(u2, s);
  m.AddEdge(u1, j);
  m.AddEdge(u2, j);
  auto decomp = DecomposeSymmetricComponents(m, AnalyzeSymmetry(m));

  std::vector<MetaNodeId> node_order = {s, u1, u2, j};
  auto groups = OrderGroups(decomp, node_order);
  // The school singleton should come first (position 0 in node_order).
  ASSERT_FALSE(groups.empty());
  ASSERT_FALSE(groups[0].rep.empty());
  EXPECT_EQ(groups[0].rep[0], s);

  // All nodes still covered exactly once.
  size_t covered = 0;
  for (const auto& g : groups) covered += g.size();
  EXPECT_EQ(covered, 4u);
}

}  // namespace
}  // namespace metaprox
