#include <gtest/gtest.h>

#include "metagraph/canonical.h"
#include "metagraph/mcs.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace metaprox {
namespace {

TEST(Monomorphism, PathIntoLargerStructure) {
  Metagraph path = MakePath({0, 1, 0});
  // M1: two users sharing school and major — contains user-school-user.
  Metagraph m1;
  MetaNodeId u1 = m1.AddNode(0);
  MetaNodeId u2 = m1.AddNode(0);
  MetaNodeId s = m1.AddNode(1);
  MetaNodeId j = m1.AddNode(2);
  m1.AddEdge(u1, s);
  m1.AddEdge(u2, s);
  m1.AddEdge(u1, j);
  m1.AddEdge(u2, j);
  EXPECT_TRUE(IsSubgraphIsomorphic(path, m1));
  EXPECT_FALSE(IsSubgraphIsomorphic(m1, path));
}

TEST(Monomorphism, TypeMismatchFails) {
  Metagraph a = MakePath({0, 3});
  Metagraph b = MakePath({0, 1, 0});
  EXPECT_FALSE(IsSubgraphIsomorphic(a, b));
}

TEST(Monomorphism, SelfIsomorphic) {
  util::Rng rng(88);
  for (int trial = 0; trial < 50; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)), 3, rng);
    EXPECT_TRUE(IsSubgraphIsomorphic(m, m));
  }
}

TEST(Mcs, IdenticalGraphsFullSize) {
  Metagraph m = MakePath({0, 1, 0});
  EXPECT_EQ(MaxCommonSubgraphSize(m, m), 5);  // 3 nodes + 2 edges
  EXPECT_DOUBLE_EQ(StructuralSimilarity(m, m), 1.0);
}

TEST(Mcs, DisjointTypesZero) {
  Metagraph a = MakePath({0, 1});
  Metagraph b = MakePath({2, 3});
  EXPECT_EQ(MaxCommonSubgraphSize(a, b), 0);
  EXPECT_DOUBLE_EQ(StructuralSimilarity(a, b), 0.0);
}

TEST(Mcs, SharedPathFragment) {
  // a: user-school-user; b: user-school-user-major (extra node).
  Metagraph a = MakePath({0, 1, 0});
  Metagraph b = MakePath({0, 1, 0});
  MetaNodeId extra = b.AddNode(2);
  b.AddEdge(2, extra);
  // MCS is all of a: size 5.
  EXPECT_EQ(MaxCommonSubgraphSize(a, b), 5);
  // SS = 25 / (5 * 7).
  EXPECT_NEAR(StructuralSimilarity(a, b), 25.0 / 35.0, 1e-12);
}

TEST(Mcs, SymmetricInArguments) {
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    Metagraph a = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(3)), 3, rng);
    Metagraph b = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(3)), 3, rng);
    EXPECT_EQ(MaxCommonSubgraphSize(a, b), MaxCommonSubgraphSize(b, a));
    EXPECT_DOUBLE_EQ(StructuralSimilarity(a, b), StructuralSimilarity(b, a));
  }
}

TEST(Mcs, BoundedByOne) {
  util::Rng rng(111);
  for (int trial = 0; trial < 100; ++trial) {
    Metagraph a = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)), 2, rng);
    Metagraph b = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)), 2, rng);
    double ss = StructuralSimilarity(a, b);
    EXPECT_GE(ss, 0.0);
    EXPECT_LE(ss, 1.0);
  }
}

TEST(Mcs, IsomorphicGraphsScoreOne) {
  util::Rng rng(222);
  for (int trial = 0; trial < 30; ++trial) {
    Metagraph a = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)), 3, rng);
    Metagraph b = FromCanonicalCode(Canonicalize(a));
    EXPECT_DOUBLE_EQ(StructuralSimilarity(a, b), 1.0);
  }
}

TEST(Mcs, SingleSharedNodeType) {
  // Only a user node in common (no shared edges of matching types).
  Metagraph a = MakePath({0, 1});
  Metagraph b = MakePath({0, 2});
  EXPECT_EQ(MaxCommonSubgraphSize(a, b), 1);
  EXPECT_NEAR(StructuralSimilarity(a, b), 1.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace metaprox
