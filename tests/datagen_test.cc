#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/citation.h"
#include "datagen/facebook.h"
#include "datagen/linkedin.h"

namespace metaprox::datagen {
namespace {

TEST(Facebook, StructureMatchesConfig) {
  FacebookConfig cfg;
  cfg.num_users = 300;
  Dataset ds = GenerateFacebook(cfg, 1);
  EXPECT_EQ(ds.graph.num_types(), 10u);
  EXPECT_EQ(ds.graph.CountOfType(ds.user_type), 300u);
  EXPECT_GT(ds.graph.num_edges(), 300u * 5);  // >= attribute edges
  ASSERT_EQ(ds.classes.size(), 2u);
  EXPECT_EQ(ds.classes[0].class_name(), "family");
  EXPECT_EQ(ds.classes[1].class_name(), "classmate");
}

TEST(Facebook, GroundTruthNonTrivial) {
  FacebookConfig cfg;
  cfg.num_users = 400;
  Dataset ds = GenerateFacebook(cfg, 2);
  for (const auto& gt : ds.classes) {
    EXPECT_GT(gt.num_positive_pairs(), 10u) << gt.class_name();
    EXPECT_GT(gt.queries().size(), 10u) << gt.class_name();
    // Positive pairs are between users.
    for (NodeId q : gt.queries()) {
      EXPECT_EQ(ds.graph.TypeOf(q), ds.user_type);
    }
  }
}

TEST(Facebook, DeterministicPerSeed) {
  FacebookConfig cfg;
  cfg.num_users = 200;
  Dataset a = GenerateFacebook(cfg, 7);
  Dataset b = GenerateFacebook(cfg, 7);
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.classes[0].num_positive_pairs(),
            b.classes[0].num_positive_pairs());
  // A different seed must produce a structurally different graph (compare
  // adjacency, not just counts — counts can coincide).
  Dataset c = GenerateFacebook(cfg, 8);
  bool differs = a.graph.num_edges() != c.graph.num_edges();
  for (NodeId v = 0; !differs && v < a.graph.num_nodes(); ++v) {
    auto na = a.graph.Neighbors(v);
    auto nc = c.graph.Neighbors(v);
    differs = na.size() != nc.size() ||
              !std::equal(na.begin(), na.end(), nc.begin());
  }
  EXPECT_TRUE(differs);
}

TEST(Facebook, FamilyRuleHoldsModuloNoise) {
  FacebookConfig cfg;
  cfg.num_users = 300;
  cfg.label_noise = 0.0;  // exact rules
  Dataset ds = GenerateFacebook(cfg, 3);
  const GroundTruth* family = ds.FindClass("family");
  ASSERT_NE(family, nullptr);
  // With zero noise every positive pair shares a surname node in the graph.
  const Graph& g = ds.graph;
  TypeId surname_t = g.type_registry().Find("surname");
  ASSERT_NE(surname_t, kInvalidType);
  size_t checked = 0;
  for (NodeId q : family->queries()) {
    for (NodeId other : family->RelevantTo(q)) {
      if (q > other) continue;
      auto sq = g.NeighborsOfType(q, surname_t);
      auto so = g.NeighborsOfType(other, surname_t);
      ASSERT_EQ(sq.size(), 1u);
      ASSERT_EQ(so.size(), 1u);
      EXPECT_EQ(sq[0], so[0]);
      if (++checked > 200) return;
    }
  }
}

TEST(LinkedIn, StructureMatchesConfig) {
  LinkedInConfig cfg;
  cfg.num_users = 500;
  Dataset ds = GenerateLinkedIn(cfg, 1);
  EXPECT_EQ(ds.graph.num_types(), 4u);
  EXPECT_EQ(ds.graph.CountOfType(ds.user_type), 500u);
  ASSERT_EQ(ds.classes.size(), 2u);
  EXPECT_EQ(ds.classes[0].class_name(), "college");
  EXPECT_EQ(ds.classes[1].class_name(), "coworker");
  for (const auto& gt : ds.classes) {
    EXPECT_GT(gt.queries().size(), 20u) << gt.class_name();
  }
}

TEST(LinkedIn, CollegePositivesShareCollege) {
  LinkedInConfig cfg;
  cfg.num_users = 400;
  Dataset ds = GenerateLinkedIn(cfg, 5);
  const GroundTruth* college = ds.FindClass("college");
  ASSERT_NE(college, nullptr);
  TypeId college_t = ds.graph.type_registry().Find("college");
  size_t checked = 0;
  for (NodeId q : college->queries()) {
    for (NodeId other : college->RelevantTo(q)) {
      if (q > other) continue;
      auto ca = ds.graph.NeighborsOfType(q, college_t);
      auto cb = ds.graph.NeighborsOfType(other, college_t);
      bool shared = false;
      for (NodeId x : ca) {
        for (NodeId y : cb) shared |= (x == y);
      }
      EXPECT_TRUE(shared);
      if (++checked > 200) return;
    }
  }
}

TEST(LinkedIn, DeterministicPerSeed) {
  LinkedInConfig cfg;
  cfg.num_users = 300;
  Dataset a = GenerateLinkedIn(cfg, 9);
  Dataset b = GenerateLinkedIn(cfg, 9);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.classes[1].num_positive_pairs(),
            b.classes[1].num_positive_pairs());
}

TEST(Citation, StructureAndClasses) {
  CitationConfig cfg;
  cfg.num_papers = 400;
  Dataset ds = GenerateCitation(cfg, 1);
  EXPECT_EQ(ds.graph.num_types(), 4u);
  EXPECT_EQ(ds.graph.CountOfType(ds.user_type), 400u);
  ASSERT_EQ(ds.classes.size(), 2u);
  EXPECT_EQ(ds.classes[0].class_name(), "same-problem");
  for (const auto& gt : ds.classes) {
    EXPECT_GT(gt.num_positive_pairs(), 10u);
  }
}

TEST(Citation, PapersCiteEachOther) {
  CitationConfig cfg;
  cfg.num_papers = 300;
  Dataset ds = GenerateCitation(cfg, 2);
  // paper-paper edges exist (citations).
  EXPECT_GT(ds.graph.EdgeCountBetweenTypes(ds.user_type, ds.user_type), 0u);
}

TEST(AllGenerators, FindClassHelper) {
  FacebookConfig cfg;
  cfg.num_users = 100;
  Dataset ds = GenerateFacebook(cfg, 4);
  EXPECT_NE(ds.FindClass("family"), nullptr);
  EXPECT_EQ(ds.FindClass("absent"), nullptr);
}

}  // namespace
}  // namespace metaprox::datagen
