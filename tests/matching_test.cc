#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "matching/backtracking.h"
#include "matching/baseline_matchers.h"
#include "matching/candidate_filter.h"
#include "matching/matcher.h"
#include "matching/order.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace metaprox {
namespace {

Metagraph UserSchoolUser(const testing::ToyGraph& t) {
  return MakePath({t.user, t.school, t.user});
}

// M2 of Fig. 2: users sharing employer and hobby.
Metagraph MakeM2(const testing::ToyGraph& t) {
  Metagraph m;
  MetaNodeId u1 = m.AddNode(t.user);
  MetaNodeId u2 = m.AddNode(t.user);
  MetaNodeId e = m.AddNode(t.employer);
  MetaNodeId h = m.AddNode(t.hobby);
  m.AddEdge(u1, e);
  m.AddEdge(u2, e);
  m.AddEdge(u1, h);
  m.AddEdge(u2, h);
  return m;
}

class MatcherParamTest : public ::testing::TestWithParam<MatcherKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllMatchers, MatcherParamTest,
    ::testing::Values(MatcherKind::kQuickSI, MatcherKind::kTurboISO,
                      MatcherKind::kBoostISO, MatcherKind::kSymISO,
                      MatcherKind::kSymISORandom),
    [](const ::testing::TestParamInfo<MatcherKind>& info) {
      std::string name = MatcherKindName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST_P(MatcherParamTest, ToyGraphUserSchoolUser) {
  auto toy = testing::MakeToyGraph();
  auto matcher = CreateMatcher(GetParam());
  CountingSink sink;
  MatchStats stats = matcher->Match(toy.graph, UserSchoolUser(toy), &sink);
  // Instances: {Kate, CollegeA, Jay} and {Bob, CollegeB, Tom}, each found
  // by 2 embeddings (the user pair can be swapped).
  EXPECT_EQ(stats.embeddings, 4u);
  EXPECT_EQ(sink.count(), 4u);
  EXPECT_FALSE(stats.aborted);
}

TEST_P(MatcherParamTest, ToyGraphM2CloseFriends) {
  auto toy = testing::MakeToyGraph();
  auto matcher = CreateMatcher(GetParam());
  CountingSink sink;
  matcher->Match(toy.graph, MakeM2(toy), &sink);
  // Only {Kate, Alice, CompanyX, Music}: 2 embeddings.
  EXPECT_EQ(sink.count(), 2u);
}

TEST_P(MatcherParamTest, EmbeddingsAreValid) {
  auto toy = testing::MakeToyGraph();
  Metagraph m = MakeM2(toy);
  auto matcher = CreateMatcher(GetParam());
  CollectingSink sink;
  matcher->Match(toy.graph, m, &sink);
  for (const auto& e : sink.embeddings()) {
    ASSERT_EQ(e.size(), static_cast<size_t>(m.num_nodes()));
    // Injective.
    std::set<NodeId> uniq(e.begin(), e.end());
    EXPECT_EQ(uniq.size(), e.size());
    // Types and edges preserved.
    for (int u = 0; u < m.num_nodes(); ++u) {
      EXPECT_EQ(toy.graph.TypeOf(e[u]), m.TypeOf(static_cast<MetaNodeId>(u)));
      for (int v = u + 1; v < m.num_nodes(); ++v) {
        if (m.HasEdge(static_cast<MetaNodeId>(u),
                      static_cast<MetaNodeId>(v))) {
          EXPECT_TRUE(toy.graph.HasEdge(e[u], e[v]));
        }
      }
    }
  }
}

TEST_P(MatcherParamTest, AgreesWithBruteForceOnRandomInputs) {
  util::Rng rng(1234);
  auto matcher = CreateMatcher(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    Graph g = testing::MakeRandomGraph(24, 3, 3.5, 1000 + trial);
    Metagraph m = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(3)), 3, rng);
    uint64_t expected = testing::BruteForceCountEmbeddings(g, m);
    CountingSink sink;
    matcher->Match(g, m, &sink);
    EXPECT_EQ(sink.count(), expected)
        << "matcher=" << matcher->name() << " trial=" << trial;
  }
}

TEST_P(MatcherParamTest, SymmetricPatternsAgreeWithBruteForce) {
  // Patterns with rich symmetry are SymISO's special-cased path; check the
  // counts stay exact.
  auto matcher = CreateMatcher(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = testing::MakeRandomGraph(20, 2, 4.0, 7000 + trial);
    // Star: center type 1 with three type-0 leaves.
    Metagraph star;
    MetaNodeId c = star.AddNode(1);
    for (int i = 0; i < 3; ++i) star.AddEdge(c, star.AddNode(0));
    CountingSink sink;
    matcher->Match(g, star, &sink);
    EXPECT_EQ(sink.count(), testing::BruteForceCountEmbeddings(g, star));

    // Double-anchored 4-node pattern (M1 shape).
    Metagraph m1;
    MetaNodeId u1 = m1.AddNode(0);
    MetaNodeId u2 = m1.AddNode(0);
    MetaNodeId s = m1.AddNode(1);
    MetaNodeId j = m1.AddNode(1);
    m1.AddEdge(u1, s);
    m1.AddEdge(u2, s);
    m1.AddEdge(u1, j);
    m1.AddEdge(u2, j);
    CountingSink sink2;
    matcher->Match(g, m1, &sink2);
    EXPECT_EQ(sink2.count(), testing::BruteForceCountEmbeddings(g, m1));
  }
}

TEST_P(MatcherParamTest, UserUserEdgePatterns) {
  // Mirror components adjacent to each other (cross edges) — the tricky
  // case for SymISO's pair instantiation.
  auto matcher = CreateMatcher(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = testing::MakeRandomGraph(18, 2, 4.5, 9000 + trial);
    Metagraph m;
    MetaNodeId u1 = m.AddNode(0);
    MetaNodeId u2 = m.AddNode(0);
    MetaNodeId a = m.AddNode(1);
    m.AddEdge(u1, u2);  // cross edge between mirrored nodes
    m.AddEdge(u1, a);
    m.AddEdge(u2, a);
    CountingSink sink;
    matcher->Match(g, m, &sink);
    EXPECT_EQ(sink.count(), testing::BruteForceCountEmbeddings(g, m))
        << "matcher=" << matcher->name() << " trial=" << trial;
  }
}

TEST_P(MatcherParamTest, SinkAbortStopsSearch) {
  Graph g = testing::MakeRandomGraph(60, 2, 6.0, 4242);
  Metagraph m = MakePath({0, 1, 0});
  auto matcher = CreateMatcher(GetParam());
  CountingSink unlimited;
  matcher->Match(g, m, &unlimited);
  if (unlimited.count() > 3) {
    CountingSink capped(3);
    MatchStats stats = matcher->Match(g, m, &capped);
    EXPECT_EQ(capped.count(), 3u);
    EXPECT_TRUE(stats.aborted);
  }
}

TEST_P(MatcherParamTest, NoMatchesForInfeasibleType) {
  auto toy = testing::MakeToyGraph();
  // hobby-surname edge never occurs.
  Metagraph m = MakePath({toy.hobby, toy.surname});
  auto matcher = CreateMatcher(GetParam());
  CountingSink sink;
  matcher->Match(toy.graph, m, &sink);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(CandidateFilter, TypeDegreeFilterIsSound) {
  // Filtering must never exclude a node that participates in an embedding.
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = testing::MakeRandomGraph(25, 3, 4.0, 5000 + trial);
    util::Rng rng(trial);
    Metagraph m = testing::MakeRandomMetagraph(3, 3, rng);
    CandidateFilter filter = BuildTypeDegreeFilter(g, m);
    RefineFilter(g, m, filter, -1);

    CollectingSink all;
    auto order = GreedyNodeOrder(g, m);
    BacktrackMatch(g, m, order, &all, nullptr);
    for (const auto& e : all.embeddings()) {
      for (int u = 0; u < m.num_nodes(); ++u) {
        EXPECT_TRUE(filter.Allows(e[u], static_cast<MetaNodeId>(u)));
      }
    }
  }
}

TEST(CandidateFilter, RefinementOnlyShrinks) {
  Graph g = testing::MakeRandomGraph(40, 3, 4.0, 31);
  util::Rng rng(31);
  Metagraph m = testing::MakeRandomMetagraph(4, 3, rng);
  CandidateFilter filter = BuildTypeDegreeFilter(g, m);
  std::vector<uint64_t> before(m.num_nodes());
  for (MetaNodeId u = 0; u < m.num_nodes(); ++u) {
    before[u] = filter.CountAllowed(u);
  }
  RefineFilter(g, m, filter, -1);
  for (MetaNodeId u = 0; u < m.num_nodes(); ++u) {
    EXPECT_LE(filter.CountAllowed(u), before[u]);
  }
}

TEST(MatchStatsTest, SymISOVisitsFewerSearchNodesOnSymmetricPatterns) {
  // The headline mechanism: on a symmetric pattern, SymISO's candidate
  // re-use should not *increase* explored state vs QuickSI.
  Graph g = testing::MakeRandomGraph(400, 2, 8.0, 606);
  Metagraph m1;
  MetaNodeId u1 = m1.AddNode(0);
  MetaNodeId u2 = m1.AddNode(0);
  MetaNodeId s = m1.AddNode(1);
  MetaNodeId j = m1.AddNode(1);
  m1.AddEdge(u1, s);
  m1.AddEdge(u2, s);
  m1.AddEdge(u1, j);
  m1.AddEdge(u2, j);

  CountingSink s1, s2;
  MatchStats quick = QuickSIMatcher().Match(g, m1, &s1);
  MatchStats sym = CreateMatcher(MatcherKind::kSymISO)->Match(g, m1, &s2);
  EXPECT_EQ(s1.count(), s2.count());
  EXPECT_GT(s1.count(), 0u);
  EXPECT_LE(sym.search_nodes, quick.search_nodes);
}

TEST(MatcherFactory, NamesRoundTrip) {
  for (MatcherKind kind :
       {MatcherKind::kQuickSI, MatcherKind::kTurboISO, MatcherKind::kBoostISO,
        MatcherKind::kSymISO, MatcherKind::kSymISORandom}) {
    auto matcher = CreateMatcher(kind);
    EXPECT_STREQ(matcher->name(), MatcherKindName(kind));
  }
}

}  // namespace
}  // namespace metaprox
