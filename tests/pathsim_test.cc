#include <gtest/gtest.h>

#include "baselines/pathsim.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

TEST(PathSimTest, CountsSharedAttributePaths) {
  auto toy = testing::MakeToyGraph();
  PathSim ps(toy.graph, {toy.user, toy.school, toy.user});
  // Kate and Jay share College A: exactly one path kate-collegeA-jay.
  EXPECT_EQ(ps.PathCount(toy.kate, toy.jay), 1u);
  EXPECT_EQ(ps.PathCount(toy.bob, toy.tom), 1u);
  EXPECT_EQ(ps.PathCount(toy.kate, toy.bob), 0u);
  // Self path counts: kate-collegeA-kate.
  EXPECT_EQ(ps.PathCount(toy.kate, toy.kate), 1u);
}

TEST(PathSimTest, SimilarityFormula) {
  auto toy = testing::MakeToyGraph();
  PathSim ps(toy.graph, {toy.user, toy.school, toy.user});
  // s(kate, jay) = 2*1 / (1 + 1) = 1.
  EXPECT_DOUBLE_EQ(ps.Similarity(toy.kate, toy.jay), 1.0);
  EXPECT_DOUBLE_EQ(ps.Similarity(toy.kate, toy.bob), 0.0);
  EXPECT_DOUBLE_EQ(ps.Similarity(toy.kate, toy.kate), 1.0);
}

TEST(PathSimTest, SymmetricInArguments) {
  auto toy = testing::MakeToyGraph();
  PathSim ps(toy.graph, {toy.user, toy.address, toy.user});
  EXPECT_DOUBLE_EQ(ps.Similarity(toy.alice, toy.bob),
                   ps.Similarity(toy.bob, toy.alice));
}

TEST(PathSimTest, LongerMetapath) {
  auto toy = testing::MakeToyGraph();
  // user-hobby-user-hobby-user: via the shared hobby through a middle user.
  PathSim ps(toy.graph, {toy.user, toy.hobby, toy.user, toy.hobby,
                         toy.user});
  // kate-music-alice-music-kate: self-count through Alice.
  EXPECT_GE(ps.PathCount(toy.kate, toy.kate), 1u);
}

TEST(PathSimTest, RankOrdersBySimilarity) {
  auto toy = testing::MakeToyGraph();
  PathSim ps(toy.graph, {toy.user, toy.school, toy.user});
  auto ranked = ps.Rank(toy.kate, 10);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].first, toy.jay);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].second, ranked[i].second);
  }
  for (const auto& [node, score] : ranked) EXPECT_NE(node, toy.kate);
}

TEST(PathSimTest, AgreesWithBruteForcePathCount) {
  Graph g = testing::MakeRandomGraph(40, 3, 4.0, 77);
  PathSim ps(g, {0, 1, 0});
  // Brute-force count of x-m-y paths.
  auto brute = [&](NodeId x, NodeId y) {
    uint64_t count = 0;
    for (NodeId m : g.NeighborsOfType(x, 1)) {
      count += g.HasEdge(m, y);
    }
    return count;
  };
  auto t0 = g.NodesOfType(0);
  for (size_t i = 0; i < t0.size(); i += 3) {
    for (size_t j = 0; j < t0.size(); j += 5) {
      EXPECT_EQ(ps.PathCount(t0[i], t0[j]), brute(t0[i], t0[j]));
    }
  }
}

TEST(PathSimTest, SimilarityBounded) {
  Graph g = testing::MakeRandomGraph(60, 3, 5.0, 88);
  PathSim ps(g, {0, 1, 0});
  auto t0 = g.NodesOfType(0);
  for (size_t i = 0; i < t0.size(); i += 2) {
    for (size_t j = i; j < t0.size(); j += 3) {
      double s = ps.Similarity(t0[i], t0[j]);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace metaprox
