// Parallel offline matching: the index built by the ThreadPool fan-out must
// be byte-identical to the serial build for any thread count, MatchSubset
// must stay idempotent, and per-metagraph match stats must be recorded.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/facebook.h"
#include "eval/splits.h"

namespace metaprox {
namespace {

datagen::Dataset MakeDataset(uint32_t num_users = 150, uint64_t seed = 19) {
  datagen::FacebookConfig cfg;
  cfg.num_users = num_users;
  return datagen::GenerateFacebook(cfg, seed);
}

EngineOptions MakeOptions(const datagen::Dataset& ds, unsigned num_threads) {
  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  options.miner.min_support = 3;
  options.miner.max_nodes = 4;
  options.num_threads = num_threads;
  return options;
}

std::string SerializeIndex(const MetagraphVectorIndex& index) {
  std::ostringstream out;
  auto status = index.WriteTo(out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

TEST(ParallelMatch, IndexBytesIdenticalAcrossThreadCounts) {
  datagen::Dataset ds = MakeDataset();
  std::string reference;
  size_t num_metagraphs = 0;
  for (unsigned threads : {1u, 2u, 8u}) {
    SearchEngine engine(ds.graph, MakeOptions(ds, threads));
    engine.Mine();
    engine.MatchAll();
    std::string serialized = SerializeIndex(engine.index());
    if (threads == 1) {
      reference = serialized;
      num_metagraphs = engine.metagraphs().size();
      ASSERT_GT(num_metagraphs, 5u);
      ASSERT_FALSE(reference.empty());
    } else {
      ASSERT_EQ(engine.metagraphs().size(), num_metagraphs);
      EXPECT_EQ(serialized, reference)
          << "index built with " << threads << " threads diverged";
    }
  }
}

TEST(ParallelMatch, ZeroThreadsMeansHardwareConcurrency) {
  datagen::Dataset ds = MakeDataset(100, 3);
  SearchEngine serial(ds.graph, MakeOptions(ds, 1));
  serial.Mine();
  serial.MatchAll();
  SearchEngine parallel(ds.graph, MakeOptions(ds, 0));
  parallel.Mine();
  parallel.MatchAll();
  EXPECT_EQ(SerializeIndex(parallel.index()), SerializeIndex(serial.index()));
}

TEST(ParallelMatch, MatchSubsetIsIdempotentAndHandlesDuplicates) {
  datagen::Dataset ds = MakeDataset(100, 7);
  SearchEngine once(ds.graph, MakeOptions(ds, 4));
  once.Mine();
  once.MatchAll();

  SearchEngine twice(ds.graph, MakeOptions(ds, 4));
  twice.Mine();
  const size_t m = twice.metagraphs().size();
  ASSERT_EQ(m, once.metagraphs().size());

  // Duplicates within one call, a partial prefix, then everything — twice.
  std::vector<uint32_t> prefix = {0, 1, 1, 0, 2 % static_cast<uint32_t>(m)};
  twice.MatchSubset(prefix);
  std::vector<uint32_t> all(m);
  std::iota(all.begin(), all.end(), 0);
  twice.MatchSubset(all);
  twice.MatchSubset(all);  // every metagraph already committed: no-op
  twice.FinalizeIndex();

  for (uint32_t i = 0; i < m; ++i) {
    EXPECT_TRUE(twice.index().IsCommitted(i));
  }
  EXPECT_EQ(SerializeIndex(twice.index()), SerializeIndex(once.index()));
}

TEST(ParallelMatch, RecordsPerMetagraphStats) {
  datagen::Dataset ds = MakeDataset(100, 11);
  SearchEngine engine(ds.graph, MakeOptions(ds, 2));
  engine.Mine();
  const auto& before = engine.match_stats();
  ASSERT_EQ(before.size(), engine.metagraphs().size());
  for (const auto& s : before) EXPECT_FALSE(s.matched);

  engine.MatchAll();
  uint64_t total_embeddings = 0, total_search_nodes = 0;
  for (const MetagraphMatchStats& s : engine.match_stats()) {
    EXPECT_TRUE(s.matched);
    EXPECT_GE(s.seconds, 0.0);
    total_embeddings += s.embeddings;
    total_search_nodes += s.search_nodes;
  }
  EXPECT_GT(total_embeddings, 0u);
  EXPECT_GT(total_search_nodes, 0u);
}

TEST(ParallelMatch, DualStageIdenticalAcrossThreadCounts) {
  datagen::Dataset ds = MakeDataset(150, 23);
  const GroundTruth* family = ds.FindClass("family");
  ASSERT_NE(family, nullptr);
  util::Rng rng(4);
  QuerySplit split = SplitQueries(*family, 0.2, rng);
  auto pool = ds.graph.NodesOfType(ds.user_type);
  std::vector<NodeId> pool_vec(pool.begin(), pool.end());
  auto examples = SampleExamples(*family, split.train, pool_vec, 80, rng);

  auto run = [&](unsigned threads) {
    auto engine =
        std::make_unique<SearchEngine>(ds.graph, MakeOptions(ds, threads));
    engine->Mine();
    DualStageOptions options;
    options.num_candidates = 5;
    options.train.max_iterations = 150;
    options.train.restarts = 2;
    DualStageResult result = engine->TrainDualStage(examples, options);
    return std::make_pair(std::move(engine), std::move(result));
  };
  auto [serial_engine, serial] = run(1);
  auto [parallel_engine, parallel] = run(8);

  // The on-demand matching feeds identical vectors to the (deterministic)
  // trainer, so stage outcomes must agree exactly.
  EXPECT_EQ(serial.seeds, parallel.seeds);
  EXPECT_EQ(serial.candidates, parallel.candidates);
  EXPECT_EQ(serial.final_stage.weights, parallel.final_stage.weights);
  EXPECT_EQ(SerializeIndex(serial_engine->index()),
            SerializeIndex(parallel_engine->index()));
}

}  // namespace
}  // namespace metaprox
