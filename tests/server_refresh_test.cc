// Live-traffic index maintenance, end to end over loopback: clients
// streaming byte-checked queries race admin APPEND/REFRESH/SWAPINDEX,
// every response must byte-equal the offline answer of SOME published
// generation (never a torn mix), swapped-in artifacts must restore the
// exact saved bytes, and the maintenance failure modes must answer with
// their structured codes. Runs under TSan in CI (label `concurrency`).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/index_maintainer.h"
#include "datagen/facebook.h"
#include "server/client.h"
#include "server/index_registry.h"
#include "server/model_registry.h"
#include "server/query_server.h"
#include "server/wire.h"
#include "test_helpers.h"
#include "util/socket.h"

namespace metaprox {
namespace {

using server::AdminResult;
using server::ErrorCode;
using server::QueryClient;
using server::QueryServer;
using server::ServerOptions;

constexpr size_t kK = 10;

// Everything one test needs, built fresh per test: refreshes mutate the
// maintainer, so tests must not share one.
struct Fixture {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  MgpModel model;
  std::unique_ptr<server::ModelRegistry> registry;
  std::unique_ptr<IndexMaintainer> maintainer;
  std::unique_ptr<server::IndexRegistry> indexes;
  std::unique_ptr<QueryServer> server;
  std::vector<NodeId> users;

  explicit Fixture(bool with_maintainer = true) {
    datagen::FacebookConfig cfg;
    cfg.num_users = 100;
    ds = datagen::GenerateFacebook(cfg, 17);
    EngineOptions options;
    options.miner.anchor_type = ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    engine = std::make_unique<SearchEngine>(ds.graph, options);
    engine->Mine();
    engine->MatchAll();
    model.weights.assign(engine->metagraphs().size(), 1.0);
    registry =
        std::make_unique<server::ModelRegistry>(model.weights.size());
    EXPECT_TRUE(registry->Load("main", model).ok());
    if (with_maintainer) {
      MaintainerOptions mopts;
      mopts.matcher = options.matcher;
      mopts.embedding_cap = options.embedding_cap;
      maintainer = std::make_unique<IndexMaintainer>(*engine, mopts);
    }
    indexes = std::make_unique<server::IndexRegistry>(
        maintainer != nullptr ? maintainer->snapshot() : engine->Snapshot());

    ServerOptions server_options;
    server_options.default_model = "main";
    server_options.admin = true;
    server_options.num_threads = 2;
    server = std::make_unique<QueryServer>(indexes.get(), registry.get(),
                                           server_options,
                                           maintainer.get());
    auto status = server->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();

    auto pool = ds.graph.NodesOfType(ds.user_type);
    users.assign(pool.begin(), pool.end());
  }

  /// The exact response line a given snapshot would answer for `node`.
  static std::string LineOf(const IndexSnapshot& snapshot,
                            const MgpModel& m, NodeId node) {
    return server::BuildQueryResponse(node, snapshot.Query(m, node, kK));
  }

  util::StatusOr<AdminResult> Admin(const std::string& line) {
    auto client = QueryClient::Connect("127.0.0.1", server->port());
    if (!client.ok()) return client.status();
    return client->Admin(line);
  }
};

TEST(ServerRefresh, RefreshUnderConcurrentByteCheckedReaders) {
  Fixture f;
  const std::vector<NodeId> probes(f.users.begin(), f.users.begin() + 12);

  // Offline truth for the generation being served at start.
  std::map<NodeId, std::string> old_line;
  auto base_snapshot = f.maintainer->snapshot();
  for (NodeId u : probes) {
    old_line[u] = Fixture::LineOf(*base_snapshot, f.model, u);
  }

  // Readers stream pipelined probe rounds and record the raw response
  // lines; validation happens after the refresh is known.
  std::atomic<bool> stop{false};
  struct ReaderLog {
    std::vector<std::pair<NodeId, std::string>> lines;
    std::string error;
    // The main thread's pacing loops poll these atomics instead of
    // touching `lines`/`error`, which stay reader-owned until join().
    std::atomic<size_t> progress{0};
    std::atomic<bool> failed{false};
  };
  std::vector<ReaderLog> logs(3);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < logs.size(); ++r) {
    readers.emplace_back([&, r] {
      auto sock = util::ConnectTcp("127.0.0.1", f.server->port());
      if (!sock.ok()) {
        logs[r].error = sock.status().ToString();
        logs[r].failed.store(true, std::memory_order_release);
        return;
      }
      util::LineReader reader(*sock);
      while (!stop.load(std::memory_order_relaxed)) {
        for (NodeId u : probes) {
          if (!util::SendAll(*sock, server::BuildQueryRequest(u, kK)).ok()) {
            logs[r].error = "send failed";
            logs[r].failed.store(true, std::memory_order_release);
            return;
          }
        }
        for (NodeId u : probes) {
          std::string line;
          if (!reader.ReadLine(&line)) {
            logs[r].error = "read failed";
            logs[r].failed.store(true, std::memory_order_release);
            return;
          }
          logs[r].lines.emplace_back(u, line + "\n");
          logs[r].progress.store(logs[r].lines.size(),
                                 std::memory_order_release);
        }
      }
    });
  }

  // Let the readers get going, then append + refresh mid-traffic.
  while (logs[0].progress.load(std::memory_order_acquire) < probes.size()) {
    std::this_thread::yield();
  }
  auto append =
      f.Admin("APPEND E " + std::to_string(f.users[0]) + ' ' +
              std::to_string(f.users[11]));
  ASSERT_TRUE(append.ok()) << append.status().ToString();
  ASSERT_TRUE(append->ok()) << append->raw;
  EXPECT_EQ(append->verb, "APPEND");

  auto refresh = f.Admin("REFRESH");
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
  ASSERT_TRUE(refresh->ok()) << refresh->raw;
  EXPECT_EQ(refresh->verb, "REFRESH");
  ASSERT_EQ(refresh->fields.size(), 4u) << refresh->raw;
  EXPECT_EQ(refresh->fields[0], "2");  // generation
  EXPECT_EQ(refresh->fields[2], "0");  // appended nodes
  EXPECT_EQ(refresh->fields[3], "1");  // appended edges

  // A couple more rounds on the refreshed index, then stop.
  const size_t after_refresh = logs[0].progress.load(std::memory_order_acquire);
  while (logs[0].progress.load(std::memory_order_acquire) <
             after_refresh + 2 * probes.size() &&
         !logs[0].failed.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  // Offline truth for the refreshed generation — served from the same
  // snapshot object the registry published.
  auto refreshed_snapshot = f.maintainer->snapshot();
  ASSERT_EQ(refreshed_snapshot->generation(), 2u);
  std::map<NodeId, std::string> new_line;
  for (NodeId u : probes) {
    new_line[u] = Fixture::LineOf(*refreshed_snapshot, f.model, u);
  }

  // Every line answered during the race byte-equals one generation's
  // offline answer; once a connection sees the new generation it never
  // goes back (queries pin at enqueue, FIFO per connection).
  for (const ReaderLog& log : logs) {
    ASSERT_TRUE(log.error.empty()) << log.error;
    ASSERT_FALSE(log.lines.empty());
    bool seen_new = false;
    for (const auto& [u, line] : log.lines) {
      if (line == new_line[u]) {
        seen_new = true;
      } else {
        EXPECT_EQ(line, old_line[u]);
        EXPECT_FALSE(seen_new)
            << "response regressed to the old generation for node " << u;
      }
    }
  }

  // The refresh changed at least one probe's answer (the appended edge
  // touches user-user metagraphs), so the byte-check above is not vacuous.
  bool any_changed = false;
  for (NodeId u : probes) any_changed |= (old_line[u] != new_line[u]);
  EXPECT_TRUE(any_changed);

  // Maintenance counters surface through STATS (fields 14-17).
  auto stats = f.Admin("STATS");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->verb, "STATS");
  ASSERT_EQ(stats->fields.size(), 17u) << stats->raw;
  EXPECT_EQ(stats->fields[13], "0");  // append_nodes
  EXPECT_EQ(stats->fields[14], "1");  // append_edges
  EXPECT_EQ(stats->fields[15], "1");  // index_refreshes
  EXPECT_EQ(stats->fields[16], "0");  // index_swaps
}

TEST(ServerRefresh, SwapIndexRestoresTheSavedArtifact) {
  Fixture f;
  const std::string prefix = testing::UniqueTempPath("swap_artifact");
  ASSERT_TRUE(f.engine->SaveOffline(prefix).ok());

  const std::vector<NodeId> probes(f.users.begin(), f.users.begin() + 8);
  auto base_snapshot = f.maintainer->snapshot();
  std::map<NodeId, std::string> saved_line;
  for (NodeId u : probes) {
    saved_line[u] = Fixture::LineOf(*base_snapshot, f.model, u);
  }

  // Drift the live index away from the artifact (edge-only, so the node
  // count — which SWAPINDEX validates — stays fixed).
  auto append =
      f.Admin("APPEND E " + std::to_string(f.users[1]) + ' ' +
              std::to_string(f.users[7]));
  ASSERT_TRUE(append.ok() && append->ok()) << append->raw;
  auto refresh = f.Admin("REFRESH");
  ASSERT_TRUE(refresh.ok() && refresh->ok()) << refresh->raw;
  bool drifted = false;
  for (NodeId u : probes) {
    drifted |= (Fixture::LineOf(*f.maintainer->snapshot(), f.model, u) !=
                saved_line[u]);
  }
  EXPECT_TRUE(drifted);

  // Swap the saved artifact back in, then query over the SAME connection:
  // per-connection FIFO means these queries pin the swapped generation.
  auto sock = util::ConnectTcp("127.0.0.1", f.server->port());
  ASSERT_TRUE(sock.ok());
  util::LineReader reader(*sock);
  ASSERT_TRUE(
      util::SendAll(*sock, server::BuildSwapIndexRequest(prefix)).ok());
  std::string reply;
  ASSERT_TRUE(reader.ReadLine(&reply));
  // Generations: base 1 -> refresh 2 -> swap 3.
  EXPECT_EQ(reply, "OK SWAPINDEX 3");

  for (NodeId u : probes) {
    ASSERT_TRUE(
        util::SendAll(*sock, server::BuildQueryRequest(u, kK)).ok());
  }
  for (NodeId u : probes) {
    std::string line;
    ASSERT_TRUE(reader.ReadLine(&line));
    EXPECT_EQ(line + "\n", saved_line[u]) << "node " << u;
  }

  auto stats = f.Admin("STATS");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->fields.size(), 17u);
  EXPECT_EQ(stats->fields[16], "1");  // index_swaps
}

TEST(ServerRefresh, MaintenanceFailureModesAnswerStructuredCodes) {
  // A maintained server: bad deltas and bad artifacts.
  Fixture f;
  auto self_loop = f.Admin("APPEND E 4 4");
  ASSERT_TRUE(self_loop.ok());
  EXPECT_EQ(self_loop->error_code,
            static_cast<int>(ErrorCode::kBadDelta));
  auto out_of_range = f.Admin("APPEND E 0 4000000");
  ASSERT_TRUE(out_of_range.ok());
  EXPECT_EQ(out_of_range->error_code,
            static_cast<int>(ErrorCode::kBadDelta));
  auto bad_artifact = f.Admin("SWAPINDEX /nonexistent/prefix");
  ASSERT_TRUE(bad_artifact.ok());
  EXPECT_EQ(bad_artifact->error_code,
            static_cast<int>(ErrorCode::kIndexAdminError));

  // A server without a maintainer refuses maintenance outright.
  Fixture plain(/*with_maintainer=*/false);
  for (const std::string& verb :
       {std::string("REFRESH"), std::string("APPEND N user"),
        std::string("APPEND E 0 1")}) {
    auto result = plain.Admin(verb);
    ASSERT_TRUE(result.ok()) << verb;
    EXPECT_EQ(result->error_code,
              static_cast<int>(ErrorCode::kIndexAdminError))
        << verb << " -> " << result->raw;
  }
}

}  // namespace
}  // namespace metaprox
