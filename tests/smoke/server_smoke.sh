#!/usr/bin/env bash
# End-to-end server smoke check (registered as the `server_smoke` ctest
# entry, label `smoke`; CI runs it in its own job):
#
#   1. build a small offline index with mgps_cli,
#   2. rank a duplicate-bearing query list offline with mgps_cli --tsv,
#   3. serve the SAME saved index with metaprox_server (micro-batching on),
#   4. fire the same queries through 4 concurrent mgps_client connections,
#   5. byte-diff the two outputs.
#
# The diff passing proves the whole chain — accumulation window, batching,
# concurrent fan-out, wire round-trip — returns results identical to the
# offline batched path, scores included (%.17g round-trips double bits).
#
# Usage: server_smoke.sh <mgps_cli> <metaprox_server> <mgps_client>
set -euo pipefail

MGPS_CLI=$1
SERVER=$2
CLIENT=$3

WORK=$(mktemp -d)
SERVER_PID=
cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill "${SERVER_PID}" 2>/dev/null || true
    wait "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

cd "${WORK}"

DATASET=(facebook 150 1)
CLASS=family
K=7

echo "== offline phase =="
"${MGPS_CLI}" --threads=2 offline "${DATASET[@]}" idx

# Query list: a spread of node ids plus deliberate duplicates. Any valid
# node id is fair game (non-users simply rank empty on both sides).
seq 0 3 140 > queries.txt
printf '5\n5\n12\n' >> queries.txt

echo "== offline reference (mgps_cli --tsv batch mode) =="
"${MGPS_CLI}" --threads=2 --tsv --query-file=queries.txt \
    query "${DATASET[@]}" idx "${CLASS}" "${K}" > offline.tsv
echo "reference rows: $(wc -l < offline.tsv)"

echo "== starting metaprox_server =="
"${SERVER}" --port=0 --port-file=port.txt --max-batch=16 --window-us=2000 \
    --threads=2 "${DATASET[@]}" idx "${CLASS}" > server.log 2>&1 &
SERVER_PID=$!

# The server writes the port file (atomically) only once it is listening;
# model training on the tiny dataset takes a few seconds.
for _ in $(seq 1 600); do
  [[ -s port.txt ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FATAL: server died during startup" >&2
    cat server.log >&2
    exit 1
  fi
  sleep 0.1
done
if [[ ! -s port.txt ]]; then
  echo "FATAL: server did not become ready" >&2
  cat server.log >&2
  exit 1
fi
PORT=$(cat port.txt)
echo "server listening on port ${PORT}"

echo "== concurrent client run (4 connections, pipelined) =="
"${CLIENT}" --port="${PORT}" --connections=4 --k="${K}" --tsv \
    --query-file=queries.txt > server.tsv

echo "== byte-diff server vs offline =="
diff offline.tsv server.tsv
echo "responses are byte-identical"

kill "${SERVER_PID}"
wait "${SERVER_PID}"
SERVER_PID=
echo "server shut down cleanly"
grep "served" server.log || true
echo "PASS"
