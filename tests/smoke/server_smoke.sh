#!/usr/bin/env bash
# End-to-end multi-model server smoke check (registered as the
# `server_smoke` ctest entry, label `smoke`; CI runs it in its own job):
#
#   1. build a small offline index with mgps_cli,
#   2. rank a duplicate-bearing query list offline with mgps_cli --tsv for
#      TWO classes — each run trains its class model once and SAVES it as
#      a model artifact (--model=PATH: load-or-train-and-save),
#   3. serve BOTH saved models from one metaprox_server (micro-batching
#      on, admin verbs enabled) loading the same artifacts — no retraining,
#   4. fire the same queries through concurrent pipelined mgps_client runs
#      — a v1 client (default model) and a v2 client (--model=...) AT THE
#      SAME TIME — while RELOAD hot-swaps one model AND an empty REFRESH
#      publishes a new index generation mid-run,
#   5. byte-diff every output against its offline reference, and check
#      LIST/STAT admin bookkeeping,
#   6. stream a graph update through the admin plane — APPEND an edge,
#      REFRESH into a new generation, then SWAPINDEX the original offline
#      artifact back in — and byte-diff the swapped-in responses against
#      the offline references again (plus the STATS maintenance counters).
#
# The diffs passing prove the whole chain — model save/load round-trip,
# registry resolution, accumulation window, shared-window multi-model
# batch scoring, concurrent fan-out, wire round-trip, hot-swap — returns
# results identical to the offline batched path per model, scores
# included (%.17g round-trips double bits).
#
# A final phase restarts the server with METAPROX_FORCE_SCALAR_KERNELS=1
# and byte-diffs the same streams again: the scalar fallback and the
# runtime-dispatched SIMD kernels must serve identical bytes end to end.
#
# A binary-artifact phase then repeats the offline run and the server run
# over v2 binary artifacts — an aligned-layout (mmap-able) index plus
# binary model saves, served with --mmap — and byte-diffs everything
# against the text-artifact outputs: the persistence format must be
# invisible to results.
#
# Usage: server_smoke.sh <mgps_cli> <metaprox_server> <mgps_client>
set -euo pipefail

MGPS_CLI=$1
SERVER=$2
CLIENT=$3

WORK=$(mktemp -d)
SERVER_PID=
cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill "${SERVER_PID}" 2>/dev/null || true
    wait "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

cd "${WORK}"

DATASET=(facebook 150 1)
CLASS_A=family
CLASS_B=classmate
K=7
mkdir models

echo "== offline phase =="
"${MGPS_CLI}" --threads=2 offline "${DATASET[@]}" idx

# Query list: a spread of node ids plus deliberate duplicates. Any valid
# node id is fair game (non-users simply rank empty on both sides).
seq 0 3 140 > queries.txt
printf '5\n5\n12\n' >> queries.txt

echo "== offline references (mgps_cli --tsv, train-and-save per class) =="
"${MGPS_CLI}" --threads=2 --tsv --query-file=queries.txt \
    --model="models/${CLASS_A}.model" \
    query "${DATASET[@]}" idx "${CLASS_A}" "${K}" > "offline_${CLASS_A}.tsv"
"${MGPS_CLI}" --threads=2 --tsv --query-file=queries.txt \
    --model="models/${CLASS_B}.model" \
    query "${DATASET[@]}" idx "${CLASS_B}" "${K}" > "offline_${CLASS_B}.tsv"
for class in "${CLASS_A}" "${CLASS_B}"; do
  [[ -s "models/${class}.model" ]] \
    || { echo "FATAL: model artifact for ${class} was not saved" >&2; exit 1; }
  echo "reference rows (${class}): $(wc -l < "offline_${class}.tsv")"
done

echo "== starting metaprox_server (two models, admin on) =="
"${SERVER}" --port=0 --port-file=port.txt --max-batch=16 --window-us=2000 \
    --threads=2 --admin --models-dir=models \
    "${DATASET[@]}" idx "${CLASS_A},${CLASS_B}" > server.log 2>&1 &
SERVER_PID=$!

# The server writes the port file (atomically) only once it is listening.
# Loading the saved models makes startup fast, but keep the generous
# budget for slow CI machines.
for _ in $(seq 1 600); do
  [[ -s port.txt ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FATAL: server died during startup" >&2
    cat server.log >&2
    exit 1
  fi
  sleep 0.1
done
if [[ ! -s port.txt ]]; then
  echo "FATAL: server did not become ready" >&2
  cat server.log >&2
  exit 1
fi
PORT=$(cat port.txt)
echo "server listening on port ${PORT}"

# The saved artifacts must have been LOADED, not retrained (that is the
# "train once, serve anywhere" point of model persistence).
grep -q "loaded '${CLASS_A}' model" server.log \
  || { echo "FATAL: server retrained ${CLASS_A} instead of loading" >&2;
       cat server.log >&2; exit 1; }

echo "== concurrent v1 + v2 client runs with a RELOAD hot-swap mid-run =="
# v1 client: model-less lines, answered by the default model (CLASS_A).
"${CLIENT}" --port="${PORT}" --connections=4 --k="${K}" --tsv \
    --query-file=queries.txt > "server_${CLASS_A}.tsv" &
V1_PID=$!
# v2 client: names CLASS_B explicitly on every line.
"${CLIENT}" --port="${PORT}" --connections=4 --k="${K}" --tsv \
    --model="${CLASS_B}" --query-file=queries.txt > "server_${CLASS_B}.tsv" &
V2_PID=$!
# Hot-swap CLASS_B from its (identical) artifact while both streams run:
# responses must stay byte-identical across the swap.
"${CLIENT}" --port="${PORT}" \
    --admin="RELOAD ${CLASS_B} models/${CLASS_B}.model" > reload.txt
grep -q "OK RELOAD ${CLASS_B} 2" reload.txt \
  || { echo "FATAL: RELOAD failed: $(cat reload.txt)" >&2; exit 1; }
# Publish a fresh index generation mid-run too: nothing is buffered, so
# the republished index is byte-identical and the concurrent streams must
# not change a single response byte across the generation bump.
"${CLIENT}" --port="${PORT}" --admin="REFRESH" > refresh_empty.txt
grep -q "^OK REFRESH 2 0 0 0$" refresh_empty.txt \
  || { echo "FATAL: empty REFRESH failed: $(cat refresh_empty.txt)" >&2;
       exit 1; }
wait "${V1_PID}"
wait "${V2_PID}"

echo "== byte-diff server vs offline, per model =="
diff "offline_${CLASS_A}.tsv" "server_${CLASS_A}.tsv"
diff "offline_${CLASS_B}.tsv" "server_${CLASS_B}.tsv"
echo "responses are byte-identical for both models (across the hot-swap)"

# The two classes must rank differently somewhere, or the per-model
# plumbing could be a no-op and this smoke would still pass.
if cmp -s "offline_${CLASS_A}.tsv" "offline_${CLASS_B}.tsv"; then
  echo "FATAL: the two class models produced identical output" >&2
  exit 1
fi

echo "== admin bookkeeping =="
"${CLIENT}" --port="${PORT}" --admin="LIST" | tee list.txt
grep -q "^MODELS 2 " list.txt \
  || { echo "FATAL: LIST does not show 2 models" >&2; exit 1; }
"${CLIENT}" --port="${PORT}" --admin="STAT ${CLASS_B}" | tee stat.txt
# CLASS_B is at version 2 (the RELOAD above) and served the v2 stream.
QUERY_COUNT=$(wc -l < queries.txt)
read -r _ _ STAT_VERSION _ STAT_SERVES < stat.txt
if [[ "${STAT_VERSION}" != "2" || "${STAT_SERVES}" -lt "${QUERY_COUNT}" ]]; then
  echo "FATAL: unexpected STAT reply: $(cat stat.txt)" >&2
  exit 1
fi

echo "== streaming update phase: append -> refresh -> swap -> byte-diff =="
# Buffer one appended edge, then refresh: generation 3 (the empty mid-run
# refresh was 2), zero nodes and one edge applied.
"${CLIENT}" --port="${PORT}" --admin="APPEND E 5 12" > append.txt
grep -q "^OK APPEND E 5 12$" append.txt \
  || { echo "FATAL: APPEND failed: $(cat append.txt)" >&2; exit 1; }
"${CLIENT}" --port="${PORT}" --admin="REFRESH" | tee refresh.txt
read -r _ _ GEN _ APPLIED_NODES APPLIED_EDGES < refresh.txt
if [[ "${GEN}" != "3" || "${APPLIED_NODES}" != "0" \
      || "${APPLIED_EDGES}" != "1" ]]; then
  echo "FATAL: unexpected REFRESH reply: $(cat refresh.txt)" >&2
  exit 1
fi

# Swap the original offline artifact back in (edge-only appends keep the
# node count fixed, which SWAPINDEX validates): the server must return to
# serving the EXACT offline reference bytes.
"${CLIENT}" --port="${PORT}" --admin="SWAPINDEX idx" > swap.txt
grep -q "^OK SWAPINDEX 4$" swap.txt \
  || { echo "FATAL: SWAPINDEX failed: $(cat swap.txt)" >&2; exit 1; }
"${CLIENT}" --port="${PORT}" --connections=4 --k="${K}" --tsv \
    --query-file=queries.txt > "swapped_${CLASS_A}.tsv"
"${CLIENT}" --port="${PORT}" --connections=4 --k="${K}" --tsv \
    --model="${CLASS_B}" --query-file=queries.txt > "swapped_${CLASS_B}.tsv"
diff "offline_${CLASS_A}.tsv" "swapped_${CLASS_A}.tsv"
diff "offline_${CLASS_B}.tsv" "swapped_${CLASS_B}.tsv"
echo "swapped-in artifact serves the exact offline reference bytes"

# The maintenance counters surface on the wire: the last four STATS
# fields are append_nodes append_edges index_refreshes index_swaps.
"${CLIENT}" --port="${PORT}" --admin="STATS" > stats.txt
read -r -a STATS_FIELDS < stats.txt
if [[ "${STATS_FIELDS[14]}" != "0" || "${STATS_FIELDS[15]}" != "1" \
      || "${STATS_FIELDS[16]}" != "2" || "${STATS_FIELDS[17]}" != "1" ]]; then
  echo "FATAL: unexpected maintenance counters: $(cat stats.txt)" >&2
  exit 1
fi

kill "${SERVER_PID}"
wait "${SERVER_PID}"
SERVER_PID=
echo "server shut down cleanly"
grep "served" server.log || true

echo "== scalar-kernel rerun (METAPROX_FORCE_SCALAR_KERNELS=1) =="
# Same server, same queries, SIMD dispatch forced off: the scalar
# fallback is the semantic source of truth, so every byte must match the
# dispatched run above.
METAPROX_FORCE_SCALAR_KERNELS=1 \
  "${SERVER}" --port=0 --port-file=port_scalar.txt --max-batch=16 \
    --window-us=2000 --threads=2 --models-dir=models \
    "${DATASET[@]}" idx "${CLASS_A},${CLASS_B}" > server_scalar.log 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 600); do
  [[ -s port_scalar.txt ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FATAL: scalar-kernel server died during startup" >&2
    cat server_scalar.log >&2
    exit 1
  fi
  sleep 0.1
done
PORT=$(cat port_scalar.txt)
"${CLIENT}" --port="${PORT}" --connections=4 --k="${K}" --tsv \
    --query-file=queries.txt > "scalar_${CLASS_A}.tsv"
"${CLIENT}" --port="${PORT}" --connections=4 --k="${K}" --tsv \
    --model="${CLASS_B}" --query-file=queries.txt > "scalar_${CLASS_B}.tsv"
diff "server_${CLASS_A}.tsv" "scalar_${CLASS_A}.tsv"
diff "server_${CLASS_B}.tsv" "scalar_${CLASS_B}.tsv"
echo "scalar and dispatched kernels serve byte-identical responses"

kill "${SERVER_PID}"
wait "${SERVER_PID}"
SERVER_PID=

echo "== binary artifact phase: aligned index + binary models =="
# Same pipeline, v2 binary artifacts: mgps_cli writes an aligned-layout
# (mmap-able) index and saves the class models in the binary container.
# The TSVs must be byte-identical to the text-artifact references — the
# on-disk format must be invisible to results, scores included.
mkdir models_bin
"${MGPS_CLI}" --threads=2 --binary=aligned offline "${DATASET[@]}" idx_bin
"${MGPS_CLI}" --threads=2 --tsv --query-file=queries.txt --binary=aligned \
    --mmap --model="models_bin/${CLASS_A}.model" \
    query "${DATASET[@]}" idx_bin "${CLASS_A}" "${K}" > "binary_${CLASS_A}.tsv"
"${MGPS_CLI}" --threads=2 --tsv --query-file=queries.txt --binary=aligned \
    --mmap --model="models_bin/${CLASS_B}.model" \
    query "${DATASET[@]}" idx_bin "${CLASS_B}" "${K}" > "binary_${CLASS_B}.tsv"
diff "offline_${CLASS_A}.tsv" "binary_${CLASS_A}.tsv"
diff "offline_${CLASS_B}.tsv" "binary_${CLASS_B}.tsv"
echo "binary-artifact offline runs match the text-artifact references"

echo "== mmap server over the binary artifacts =="
"${SERVER}" --port=0 --port-file=port_bin.txt --max-batch=16 \
    --window-us=2000 --threads=2 --models-dir=models_bin --mmap \
    "${DATASET[@]}" idx_bin "${CLASS_A},${CLASS_B}" > server_bin.log 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 600); do
  [[ -s port_bin.txt ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FATAL: mmap server died during startup" >&2
    cat server_bin.log >&2
    exit 1
  fi
  sleep 0.1
done
PORT=$(cat port_bin.txt)
# The aligned index must actually be memory-mapped, not eagerly parsed.
grep -q "(index mmapped)" server_bin.log \
  || { echo "FATAL: server did not mmap the aligned index" >&2;
       cat server_bin.log >&2; exit 1; }
"${CLIENT}" --port="${PORT}" --connections=4 --k="${K}" --tsv \
    --query-file=queries.txt > "mmap_${CLASS_A}.tsv"
"${CLIENT}" --port="${PORT}" --connections=4 --k="${K}" --tsv \
    --model="${CLASS_B}" --query-file=queries.txt > "mmap_${CLASS_B}.tsv"
diff "server_${CLASS_A}.tsv" "mmap_${CLASS_A}.tsv"
diff "server_${CLASS_B}.tsv" "mmap_${CLASS_B}.tsv"
echo "mmap-served responses are byte-identical to the text-artifact run"

kill "${SERVER_PID}"
wait "${SERVER_PID}"
SERVER_PID=
echo "PASS"
