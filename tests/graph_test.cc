#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_builder.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

TEST(GraphBuilder, BasicConstruction) {
  GraphBuilder b;
  TypeId user = b.InternType("user");
  TypeId school = b.InternType("school");
  NodeId a = b.AddNode(user);
  NodeId s = b.AddNode(school);
  NodeId c = b.AddNode(user);
  b.AddEdge(a, s);
  b.AddEdge(c, s);
  Graph g = b.Build();

  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_types(), 2u);
  EXPECT_EQ(g.TypeOf(a), user);
  EXPECT_EQ(g.TypeOf(s), school);
}

TEST(GraphBuilder, DeduplicatesParallelEdgesAndSelfLoops) {
  GraphBuilder b;
  b.InternType("t");
  NodeId x = b.AddNode(TypeId{0});
  NodeId y = b.AddNode(TypeId{0});
  b.AddEdge(x, y);
  b.AddEdge(y, x);
  b.AddEdge(x, y);
  b.AddEdge(x, x);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(x), 1u);
}

TEST(Graph, HasEdgeSymmetric) {
  auto toy = testing::MakeToyGraph();
  EXPECT_TRUE(toy.graph.HasEdge(toy.alice, toy.clinton));
  EXPECT_TRUE(toy.graph.HasEdge(toy.clinton, toy.alice));
  EXPECT_FALSE(toy.graph.HasEdge(toy.alice, toy.bob));
  EXPECT_FALSE(toy.graph.HasEdge(toy.tom, toy.music));
}

TEST(Graph, NeighborsSortedByTypeThenId) {
  auto toy = testing::MakeToyGraph();
  auto nbrs = toy.graph.Neighbors(toy.kate);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    TypeId t0 = toy.graph.TypeOf(nbrs[i - 1]);
    TypeId t1 = toy.graph.TypeOf(nbrs[i]);
    EXPECT_TRUE(t0 < t1 || (t0 == t1 && nbrs[i - 1] < nbrs[i]));
  }
}

TEST(Graph, NeighborsOfTypeSlices) {
  auto toy = testing::MakeToyGraph();
  auto schools = toy.graph.NeighborsOfType(toy.kate, toy.school);
  ASSERT_EQ(schools.size(), 1u);
  EXPECT_EQ(schools[0], toy.college_a);

  auto users = toy.graph.NeighborsOfType(toy.college_b, toy.user);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_TRUE(std::find(users.begin(), users.end(), toy.bob) != users.end());
  EXPECT_TRUE(std::find(users.begin(), users.end(), toy.tom) != users.end());

  auto none = toy.graph.NeighborsOfType(toy.tom, toy.hobby);
  EXPECT_TRUE(none.empty());
}

TEST(Graph, NodesOfType) {
  auto toy = testing::MakeToyGraph();
  auto users = toy.graph.NodesOfType(toy.user);
  EXPECT_EQ(users.size(), 5u);
  EXPECT_EQ(toy.graph.CountOfType(toy.address), 2u);
}

TEST(Graph, EdgeCountBetweenTypes) {
  auto toy = testing::MakeToyGraph();
  // user-surname edges: Alice-Clinton, Bob-Clinton.
  EXPECT_EQ(toy.graph.EdgeCountBetweenTypes(toy.user, toy.surname), 2u);
  EXPECT_EQ(toy.graph.EdgeCountBetweenTypes(toy.surname, toy.user), 2u);
  // user-school: 4 edges.
  EXPECT_EQ(toy.graph.EdgeCountBetweenTypes(toy.user, toy.school), 4u);
  // no school-school edges.
  EXPECT_EQ(toy.graph.EdgeCountBetweenTypes(toy.school, toy.school), 0u);
}

TEST(Graph, NamesPreserved) {
  auto toy = testing::MakeToyGraph();
  EXPECT_EQ(toy.graph.NameOf(toy.alice), "Alice");
  EXPECT_EQ(toy.graph.NameOf(toy.green_st), "123 Green St");
}

TEST(Graph, SummaryMentionsCounts) {
  auto toy = testing::MakeToyGraph();
  std::string s = toy.graph.Summary();
  EXPECT_NE(s.find("nodes=14"), std::string::npos);
  EXPECT_NE(s.find("types=7"), std::string::npos);
}

TEST(Graph, DegreeMatchesNeighborCount) {
  Graph g = testing::MakeRandomGraph(200, 4, 6.0, 123);
  size_t total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.Degree(v), g.Neighbors(v).size());
    total += g.Degree(v);
  }
  EXPECT_EQ(total, 2 * g.num_edges());
}

TEST(Graph, TypedSlicesPartitionNeighbors) {
  Graph g = testing::MakeRandomGraph(300, 5, 8.0, 77);
  for (NodeId v = 0; v < g.num_nodes(); v += 7) {
    size_t sum = 0;
    for (TypeId t = 0; t < g.num_types(); ++t) {
      auto slice = g.NeighborsOfType(v, t);
      for (NodeId u : slice) EXPECT_EQ(g.TypeOf(u), t);
      sum += slice.size();
    }
    EXPECT_EQ(sum, g.Degree(v));
  }
}

TEST(TypeRegistry, InternIsIdempotent) {
  TypeRegistry reg;
  TypeId a = reg.Intern("user");
  TypeId b = reg.Intern("school");
  EXPECT_EQ(reg.Intern("user"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.Name(a), "user");
  EXPECT_EQ(reg.Find("school"), b);
  EXPECT_EQ(reg.Find("absent"), kInvalidType);
  EXPECT_EQ(reg.size(), 2u);
}

}  // namespace
}  // namespace metaprox
