#include <gtest/gtest.h>

#include <algorithm>

#include "metagraph/decomposition.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace metaprox {
namespace {

ComponentDecomposition Decompose(const Metagraph& m) {
  return DecomposeSymmetricComponents(m, AnalyzeSymmetry(m));
}

// Counts nodes covered and checks disjointness.
void CheckPartition(const Metagraph& m, const ComponentDecomposition& d) {
  uint8_t covered = 0;
  for (const auto& g : d.groups) {
    for (MetaNodeId v : g.rep) {
      EXPECT_FALSE((covered >> v) & 1u) << "node covered twice";
      covered |= static_cast<uint8_t>(1u << v);
    }
    for (MetaNodeId v : g.mirror) {
      EXPECT_FALSE((covered >> v) & 1u) << "node covered twice";
      covered |= static_cast<uint8_t>(1u << v);
    }
  }
  EXPECT_EQ(covered, static_cast<uint8_t>((1u << m.num_nodes()) - 1));
}

TEST(Decomposition, PathUserSchoolUser) {
  Metagraph m = MakePath({0, 1, 0});
  auto d = Decompose(m);
  CheckPartition(m, d);
  // One mirror pair {0}<->{2} and one singleton {1}.
  int mirrors = 0, plain = 0;
  for (const auto& g : d.groups) {
    if (g.has_mirror()) {
      ++mirrors;
      EXPECT_EQ(g.rep.size(), 1u);
    } else {
      ++plain;
    }
  }
  EXPECT_EQ(mirrors, 1);
  EXPECT_EQ(plain, 1);
}

TEST(Decomposition, M5PaperExample) {
  // The metagraph of Fig. 5: mirror components {u_left, major_left} and
  // {u_right, major_right}, singletons for the center user and school.
  Metagraph m;
  MetaNodeId ul = m.AddNode(0);
  MetaNodeId jl = m.AddNode(2);
  MetaNodeId uc = m.AddNode(0);
  MetaNodeId sc = m.AddNode(1);
  MetaNodeId ur = m.AddNode(0);
  MetaNodeId jr = m.AddNode(2);
  m.AddEdge(ul, jl);
  m.AddEdge(ul, uc);
  m.AddEdge(ul, sc);
  m.AddEdge(ur, jr);
  m.AddEdge(ur, uc);
  m.AddEdge(ur, sc);

  auto d = Decompose(m);
  CheckPartition(m, d);

  const ComponentGroup* mirror_group = nullptr;
  int singletons = 0;
  for (const auto& g : d.groups) {
    if (g.has_mirror()) {
      EXPECT_EQ(mirror_group, nullptr) << "expected exactly one mirror pair";
      mirror_group = &g;
    } else {
      EXPECT_EQ(g.rep.size(), 1u);
      ++singletons;
    }
  }
  ASSERT_NE(mirror_group, nullptr);
  EXPECT_EQ(singletons, 2);
  EXPECT_EQ(mirror_group->rep.size(), 2u);
  // The mirror map must pair (ul <-> ur) and (jl <-> jr).
  for (size_t i = 0; i < mirror_group->rep.size(); ++i) {
    MetaNodeId r = mirror_group->rep[i];
    MetaNodeId s = mirror_group->mirror[i];
    EXPECT_EQ(m.TypeOf(r), m.TypeOf(s));
    EXPECT_NE(r, s);
  }
}

TEST(Decomposition, AsymmetricGraphAllPlain) {
  Metagraph m = MakePath({0, 1, 2});
  auto d = Decompose(m);
  CheckPartition(m, d);
  for (const auto& g : d.groups) EXPECT_FALSE(g.has_mirror());
}

TEST(Decomposition, AdjacentMirrorNodes) {
  // Two users joined by an edge sharing an address: user-user edge between
  // the mirrored singletons.
  Metagraph m;
  MetaNodeId u1 = m.AddNode(0);
  MetaNodeId u2 = m.AddNode(0);
  MetaNodeId a = m.AddNode(1);
  m.AddEdge(u1, u2);
  m.AddEdge(u1, a);
  m.AddEdge(u2, a);
  auto d = Decompose(m);
  CheckPartition(m, d);
  bool found_mirror = false;
  for (const auto& g : d.groups) found_mirror |= g.has_mirror();
  EXPECT_TRUE(found_mirror);
}

TEST(Decomposition, MirrorMapIsTypePreserving) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)), 2, rng);
    auto d = Decompose(m);
    CheckPartition(m, d);
    for (const auto& g : d.groups) {
      if (!g.has_mirror()) continue;
      ASSERT_EQ(g.rep.size(), g.mirror.size());
      for (size_t i = 0; i < g.rep.size(); ++i) {
        EXPECT_EQ(m.TypeOf(g.rep[i]), m.TypeOf(g.mirror[i]));
      }
      // Rep and mirror are disjoint.
      for (MetaNodeId r : g.rep) {
        EXPECT_EQ(std::find(g.mirror.begin(), g.mirror.end(), r),
                  g.mirror.end());
      }
    }
  }
}

TEST(Decomposition, MirrorEdgesCorrespond) {
  // The sigma pairing rep->mirror must carry intra-rep edges to intra-mirror
  // edges (it comes from an automorphism).
  util::Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        3 + static_cast<int>(rng.UniformInt(3)), 2, rng);
    auto d = Decompose(m);
    for (const auto& g : d.groups) {
      if (!g.has_mirror()) continue;
      for (size_t i = 0; i < g.rep.size(); ++i) {
        for (size_t j = i + 1; j < g.rep.size(); ++j) {
          EXPECT_EQ(m.HasEdge(g.rep[i], g.rep[j]),
                    m.HasEdge(g.mirror[i], g.mirror[j]));
        }
      }
    }
  }
}

}  // namespace
}  // namespace metaprox
