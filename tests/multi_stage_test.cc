#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/facebook.h"
#include "eval/splits.h"
#include "learning/multi_stage.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

struct Fixture {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  std::vector<Example> examples;
};

Fixture MakeFixture() {
  Fixture f;
  datagen::FacebookConfig cfg;
  cfg.num_users = 250;
  f.ds = datagen::GenerateFacebook(cfg, 19);

  EngineOptions options;
  options.miner.anchor_type = f.ds.user_type;
  options.miner.min_support = 3;
  options.miner.max_nodes = 4;
  f.engine = std::make_unique<SearchEngine>(f.ds.graph, options);
  f.engine->Mine();

  const GroundTruth& gt = f.ds.classes[1];  // classmate
  util::Rng rng(4);
  QuerySplit split = SplitQueries(gt, 0.2, rng);
  auto pool = f.ds.graph.NodesOfType(f.ds.user_type);
  std::vector<NodeId> pool_vec(pool.begin(), pool.end());
  f.examples = SampleExamples(gt, split.train, pool_vec, 150, rng);
  return f;
}

MultiStageResult RunStages(Fixture& f, MultiStageOptions options) {
  return TrainMultiStage(
      f.engine->metagraphs(),
      const_cast<MetagraphVectorIndex&>(f.engine->index()), f.examples,
      options, [&](std::span<const uint32_t> indices) {
        f.engine->MatchSubset(indices);
      });
}

TEST(MultiStage, StopsAtTargetAccuracyOrBudget) {
  Fixture f = MakeFixture();
  MultiStageOptions options;
  options.batch_size = 10;
  options.max_stages = 4;
  options.train.max_iterations = 150;
  options.train.restarts = 2;
  MultiStageResult result = RunStages(f, options);

  EXPECT_FALSE(result.seeds.empty());
  EXPECT_LE(result.batches.size(), options.max_stages);
  // One accuracy point per stage plus the seed stage.
  EXPECT_EQ(result.accuracy_trace.size(), result.batches.size() + 1);
  for (double a : result.accuracy_trace) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(MultiStage, MatchesOnlySelectedMetagraphs) {
  Fixture f = MakeFixture();
  MultiStageOptions options;
  options.batch_size = 8;
  options.max_stages = 2;
  options.target_accuracy = 2.0;  // never reached: run all stages
  options.min_improvement = -1.0;
  options.train.max_iterations = 100;
  options.train.restarts = 1;
  MultiStageResult result = RunStages(f, options);

  size_t committed = 0;
  for (uint32_t i = 0; i < f.engine->metagraphs().size(); ++i) {
    committed += f.engine->index().IsCommitted(i);
  }
  EXPECT_EQ(committed, result.total_matched());
  EXPECT_LT(committed, f.engine->metagraphs().size());
  EXPECT_EQ(result.batches.size(), 2u);
}

TEST(MultiStage, BatchesAreDisjointNonSeeds) {
  Fixture f = MakeFixture();
  MultiStageOptions options;
  options.batch_size = 6;
  options.max_stages = 3;
  options.target_accuracy = 2.0;
  options.min_improvement = -1.0;
  options.train.max_iterations = 100;
  options.train.restarts = 1;
  MultiStageResult result = RunStages(f, options);

  std::vector<bool> seen(f.engine->metagraphs().size(), false);
  for (uint32_t s : result.seeds) seen[s] = true;
  for (const auto& batch : result.batches) {
    for (uint32_t c : batch) {
      EXPECT_FALSE(seen[c]) << "metagraph selected twice";
      seen[c] = true;
      EXPECT_FALSE(f.engine->metagraphs()[c].is_path);
    }
  }
}

TEST(MultiStage, EarlyStopOnHighTarget) {
  Fixture f = MakeFixture();
  MultiStageOptions options;
  options.batch_size = 10;
  options.max_stages = 6;
  options.target_accuracy = 0.0;  // already satisfied after seeds
  options.train.max_iterations = 100;
  options.train.restarts = 1;
  MultiStageResult result = RunStages(f, options);
  EXPECT_TRUE(result.batches.empty());
}

TEST(PairwiseAccuracyTest, PerfectAndChance) {
  Fixture f = MakeFixture();
  f.engine->MatchAll();
  TrainOptions train;
  train.max_iterations = 200;
  train.restarts = 2;
  TrainResult model = TrainMgp(f.engine->index(), f.examples, train);
  double acc =
      PairwiseAccuracy(f.engine->index(), f.examples, model.weights);
  // A trained model must beat chance on its own training data.
  EXPECT_GT(acc, 0.6);

  std::vector<double> zero(f.engine->index().num_metagraphs(), 0.0);
  EXPECT_DOUBLE_EQ(
      PairwiseAccuracy(f.engine->index(), f.examples, zero), 0.5);
}

}  // namespace
}  // namespace metaprox
