#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "index/metagraph_vectors.h"
#include "learning/proximity.h"
#include "learning/trainer.h"
#include "matching/matcher.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace metaprox {
namespace {

// Toy-graph index over the six co-attribute metapaths (raw counts).
// Index layout: 0=surname 1=address 2=school 3=major 4=employer 5=hobby.
struct Fixture {
  testing::ToyGraph toy;
  std::unique_ptr<MetagraphVectorIndex> index;
};

Fixture MakeFixture() {
  Fixture f{testing::MakeToyGraph(), nullptr};
  std::vector<Metagraph> metagraphs = {
      MakePath({f.toy.user, f.toy.surname, f.toy.user}),
      MakePath({f.toy.user, f.toy.address, f.toy.user}),
      MakePath({f.toy.user, f.toy.school, f.toy.user}),
      MakePath({f.toy.user, f.toy.major, f.toy.user}),
      MakePath({f.toy.user, f.toy.employer, f.toy.user}),
      MakePath({f.toy.user, f.toy.hobby, f.toy.user})};
  f.index = std::make_unique<MetagraphVectorIndex>(
      metagraphs.size(), f.toy.graph.num_nodes(), CountTransform::kRaw);
  auto matcher = CreateMatcher(MatcherKind::kSymISO);
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
    SymPairCountingSink sink(sym, UINT64_MAX);
    matcher->Match(f.toy.graph, metagraphs[i], &sink);
    f.index->Commit(i, sink, sym.aut_size());
  }
  f.index->Finalize();
  return f;
}

TEST(Trainer, LearnsClassmateClassOnToyGraph) {
  Fixture f = MakeFixture();
  // Classmate examples from Fig. 1(b): Jay ranks above others for Kate;
  // Tom ranks above others for Bob.
  std::vector<Example> examples = {
      {f.toy.kate, f.toy.jay, f.toy.alice},
      {f.toy.kate, f.toy.jay, f.toy.bob},
      {f.toy.kate, f.toy.jay, f.toy.tom},
      {f.toy.bob, f.toy.tom, f.toy.alice},
      {f.toy.bob, f.toy.tom, f.toy.kate},
      {f.toy.bob, f.toy.tom, f.toy.jay},
  };
  TrainOptions options;
  options.restarts = 3;
  options.max_iterations = 600;
  TrainResult result = TrainMgp(*f.index, examples, options);

  // The learned model must rank the classmate partner first.
  double kate_jay =
      MgpProximity(*f.index, result.weights, f.toy.kate, f.toy.jay);
  double kate_alice =
      MgpProximity(*f.index, result.weights, f.toy.kate, f.toy.alice);
  double bob_tom =
      MgpProximity(*f.index, result.weights, f.toy.bob, f.toy.tom);
  double bob_alice =
      MgpProximity(*f.index, result.weights, f.toy.bob, f.toy.alice);
  EXPECT_GT(kate_jay, kate_alice);
  EXPECT_GT(bob_tom, bob_alice);

  // School/major should outweigh employer/hobby/surname.
  double classmate_weight =
      std::max(result.weights[2], result.weights[3]);
  EXPECT_GT(classmate_weight, result.weights[4]);
  EXPECT_GT(classmate_weight, result.weights[5]);
  EXPECT_GT(classmate_weight, result.weights[0]);
}

TEST(Trainer, LearnsFamilyClassOnToyGraph) {
  Fixture f = MakeFixture();
  std::vector<Example> examples = {
      {f.toy.bob, f.toy.alice, f.toy.tom},
      {f.toy.bob, f.toy.alice, f.toy.kate},
      {f.toy.bob, f.toy.alice, f.toy.jay},
      {f.toy.alice, f.toy.bob, f.toy.kate},
      {f.toy.alice, f.toy.bob, f.toy.jay},
  };
  TrainOptions options;
  options.max_iterations = 600;
  TrainResult result = TrainMgp(*f.index, examples, options);
  double bob_alice =
      MgpProximity(*f.index, result.weights, f.toy.bob, f.toy.alice);
  double bob_tom =
      MgpProximity(*f.index, result.weights, f.toy.bob, f.toy.tom);
  EXPECT_GT(bob_alice, bob_tom);
  // Surname weight should dominate school weight.
  EXPECT_GT(result.weights[0], result.weights[2]);
}

TEST(Trainer, WeightsWithinUnitBox) {
  Fixture f = MakeFixture();
  std::vector<Example> examples = {{f.toy.kate, f.toy.jay, f.toy.tom}};
  TrainResult result = TrainMgp(*f.index, examples, TrainOptions{});
  for (double w : result.weights) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(Trainer, ActiveSubsetRestrictsSupport) {
  Fixture f = MakeFixture();
  std::vector<Example> examples = {
      {f.toy.kate, f.toy.jay, f.toy.alice},
      {f.toy.bob, f.toy.tom, f.toy.kate},
  };
  TrainOptions options;
  options.active = {2, 3};  // school, major only
  TrainResult result = TrainMgp(*f.index, examples, options);
  EXPECT_DOUBLE_EQ(result.weights[0], 0.0);
  EXPECT_DOUBLE_EQ(result.weights[1], 0.0);
  EXPECT_DOUBLE_EQ(result.weights[4], 0.0);
  EXPECT_DOUBLE_EQ(result.weights[5], 0.0);
  EXPECT_GT(result.weights[2] + result.weights[3], 0.0);
}

TEST(Trainer, EmptyExamplesYieldZeroModel) {
  Fixture f = MakeFixture();
  TrainResult result = TrainMgp(*f.index, {}, TrainOptions{});
  for (double w : result.weights) EXPECT_DOUBLE_EQ(w, 0.0);
}

TEST(Trainer, DeterministicForSeed) {
  Fixture f = MakeFixture();
  std::vector<Example> examples = {
      {f.toy.kate, f.toy.jay, f.toy.alice},
      {f.toy.bob, f.toy.tom, f.toy.kate},
  };
  TrainOptions options;
  options.seed = 123;
  TrainResult a = TrainMgp(*f.index, examples, options);
  TrainResult b = TrainMgp(*f.index, examples, options);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.weights[i], b.weights[i]);
  }
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
}

TEST(Trainer, LikelihoodImprovesOverUniform) {
  Fixture f = MakeFixture();
  std::vector<Example> examples = {
      {f.toy.kate, f.toy.jay, f.toy.alice},
      {f.toy.kate, f.toy.jay, f.toy.bob},
      {f.toy.bob, f.toy.tom, f.toy.jay},
      {f.toy.bob, f.toy.alice, f.toy.jay},
  };
  TrainOptions options;
  options.max_iterations = 500;
  TrainResult trained = TrainMgp(*f.index, examples, options);

  // Log-likelihood of the uniform model, computed the same way.
  auto ll_of = [&](const std::vector<double>& w) {
    double ll = 0.0;
    for (const Example& e : examples) {
      double p1 = MgpProximity(*f.index, w, e.q, e.x);
      double p2 = MgpProximity(*f.index, w, e.q, e.y);
      double p = 1.0 / (1.0 + std::exp(-options.mu * (p1 - p2)));
      ll += std::log(std::max(p, 1e-300));
    }
    return ll;
  };
  std::vector<double> uniform(f.index->num_metagraphs(), 1.0);
  EXPECT_GE(trained.log_likelihood, ll_of(uniform) - 1e-9);
  // Sanity: reported LL matches recomputation.
  EXPECT_NEAR(trained.log_likelihood, ll_of(trained.weights), 1e-9);
}

}  // namespace
}  // namespace metaprox
