#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace metaprox::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(13);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.UniformInt(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // expectation 1000 each
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ZipfSkewsTowardSmallRanks) {
  Rng rng(11);
  int first = 0, last = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rng.Zipf(100, 1.0);
    ASSERT_LT(k, 100u);
    first += (k == 0);
    last += (k == 99);
  }
  EXPECT_GT(first, 20 * std::max(last, 1));
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(Stopwatch, Monotonic) {
  Stopwatch sw;
  double t1 = sw.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_GT(t2, 0.0);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "22"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatPercent(0.834, 1), "83.4%");
}

}  // namespace
}  // namespace metaprox::util
