// End-to-end integration tests: the full Fig. 3 pipeline on a small
// synthetic Facebook graph — mine, match, index, train, query — and the
// headline comparisons (learned MGP beats uniform weights; dual-stage
// matches far fewer metagraphs).
#include <gtest/gtest.h>

#include "baselines/simple.h"
#include "core/engine.h"
#include "datagen/facebook.h"
#include "eval/evaluate.h"
#include "eval/splits.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

struct Pipeline {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
};

Pipeline MakePipeline(uint32_t num_users = 250, uint64_t seed = 31) {
  Pipeline p;
  datagen::FacebookConfig cfg;
  cfg.num_users = num_users;
  p.ds = datagen::GenerateFacebook(cfg, seed);

  EngineOptions options;
  options.miner.anchor_type = p.ds.user_type;
  options.miner.min_support = 3;
  options.miner.max_nodes = 4;
  p.engine = std::make_unique<SearchEngine>(p.ds.graph, options);
  p.engine->Mine();
  return p;
}

TEST(Engine, MinesNonEmptyMetagraphSet) {
  Pipeline p = MakePipeline();
  EXPECT_GT(p.engine->metagraphs().size(), 10u);
  size_t paths = 0;
  for (const auto& m : p.engine->metagraphs()) paths += m.is_path;
  EXPECT_GT(paths, 0u);
  EXPECT_LT(paths, p.engine->metagraphs().size());
  EXPECT_GT(p.engine->timings().mine_seconds, 0.0);
}

TEST(Engine, FullPipelineTrainAndQuery) {
  Pipeline p = MakePipeline();
  p.engine->MatchAll();
  EXPECT_GT(p.engine->timings().match_seconds, 0.0);

  const GroundTruth* family = p.ds.FindClass("family");
  ASSERT_NE(family, nullptr);
  util::Rng rng(5);
  QuerySplit split = SplitQueries(*family, 0.2, rng);
  auto pool = p.ds.graph.NodesOfType(p.ds.user_type);
  std::vector<NodeId> pool_vec(pool.begin(), pool.end());
  auto examples =
      SampleExamples(*family, split.train, pool_vec, 120, rng);
  ASSERT_GT(examples.size(), 50u);

  TrainOptions train_options;
  train_options.max_iterations = 250;
  train_options.restarts = 2;
  MgpModel model = p.engine->Train(examples, train_options);

  // Query with the learned model: a test query's top-10 should contain at
  // least some relatives on average.
  size_t queries_with_hit = 0, evaluated = 0;
  for (NodeId q : split.test) {
    auto top = p.engine->Query(model, q, 10);
    const auto& relevant = family->RelevantTo(q);
    if (relevant.empty()) continue;
    ++evaluated;
    for (const auto& [node, score] : top) {
      if (relevant.contains(node)) {
        ++queries_with_hit;
        break;
      }
    }
  }
  ASSERT_GT(evaluated, 10u);
  EXPECT_GT(static_cast<double>(queries_with_hit) /
                static_cast<double>(evaluated),
            0.5);
}

TEST(Engine, LearnedModelBeatsUniformOnFamily) {
  Pipeline p = MakePipeline(300, 77);
  p.engine->MatchAll();
  const GroundTruth* family = p.ds.FindClass("family");
  ASSERT_NE(family, nullptr);
  util::Rng rng(6);
  QuerySplit split = SplitQueries(*family, 0.2, rng);
  auto pool = p.ds.graph.NodesOfType(p.ds.user_type);
  std::vector<NodeId> pool_vec(pool.begin(), pool.end());
  auto examples =
      SampleExamples(*family, split.train, pool_vec, 200, rng);

  TrainOptions train_options;
  train_options.max_iterations = 250;
  train_options.restarts = 2;
  MgpModel learned = p.engine->Train(examples, train_options);
  MgpModel uniform{UniformWeights(p.engine->index())};

  auto ranker_of = [&](const MgpModel& model) {
    return [&, model](NodeId q) {
      auto scored = p.engine->Query(model, q, 10);
      std::vector<NodeId> out;
      for (auto& [node, score] : scored) out.push_back(node);
      return out;
    };
  };
  EvalResult learned_eval =
      EvaluateRanker(*family, split.test, ranker_of(learned), 10);
  EvalResult uniform_eval =
      EvaluateRanker(*family, split.test, ranker_of(uniform), 10);
  EXPECT_GT(learned_eval.ndcg, uniform_eval.ndcg);
  EXPECT_GT(learned_eval.ndcg, 0.3);
}

TEST(Engine, DualStageMatchesFarFewerMetagraphs) {
  Pipeline p = MakePipeline(250, 91);
  const GroundTruth* classmate = p.ds.FindClass("classmate");
  ASSERT_NE(classmate, nullptr);
  util::Rng rng(8);
  QuerySplit split = SplitQueries(*classmate, 0.2, rng);
  auto pool = p.ds.graph.NodesOfType(p.ds.user_type);
  std::vector<NodeId> pool_vec(pool.begin(), pool.end());
  auto examples =
      SampleExamples(*classmate, split.train, pool_vec, 100, rng);

  DualStageOptions options;
  options.num_candidates = 5;
  options.train.max_iterations = 200;
  options.train.restarts = 2;
  DualStageResult result = p.engine->TrainDualStage(examples, options);

  size_t committed = 0;
  for (uint32_t i = 0; i < p.engine->metagraphs().size(); ++i) {
    committed += p.engine->index().IsCommitted(i);
  }
  EXPECT_EQ(committed, result.seeds.size() + result.candidates.size());
  EXPECT_LT(committed, p.engine->metagraphs().size() / 2);
}

TEST(Engine, QueryProximitySelfIsOne) {
  Pipeline p = MakePipeline(150, 13);
  p.engine->MatchAll();
  MgpModel uniform{UniformWeights(p.engine->index())};
  auto users = p.ds.graph.NodesOfType(p.ds.user_type);
  EXPECT_DOUBLE_EQ(p.engine->Proximity(uniform, users[0], users[0]), 1.0);
}

TEST(Engine, MatcherChoiceDoesNotChangeIndex) {
  // The index contents must be identical whichever matcher built them.
  datagen::FacebookConfig cfg;
  cfg.num_users = 120;
  auto ds = datagen::GenerateFacebook(cfg, 21);

  auto build = [&](MatcherKind kind) {
    EngineOptions options;
    options.miner.anchor_type = ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    options.matcher = kind;
    options.transform = CountTransform::kRaw;
    auto engine = std::make_unique<SearchEngine>(ds.graph, options);
    engine->Mine();
    engine->MatchAll();
    return engine;
  };
  auto a = build(MatcherKind::kQuickSI);
  auto b = build(MatcherKind::kSymISO);
  ASSERT_EQ(a->metagraphs().size(), b->metagraphs().size());

  auto users = ds.graph.NodesOfType(ds.user_type);
  std::vector<double> w(a->metagraphs().size(), 1.0);
  for (size_t i = 0; i < users.size(); i += 13) {
    for (size_t j = i + 1; j < users.size(); j += 17) {
      EXPECT_NEAR(a->index().PairDot(users[i], users[j], w),
                  b->index().PairDot(users[i], users[j], w), 1e-9);
    }
  }
}

}  // namespace
}  // namespace metaprox
