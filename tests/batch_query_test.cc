// The batched online path's determinism contract: BatchQuery /
// BatchRankByProximity must return results IDENTICAL — same nodes, same
// (bitwise) scores, same tie-break order — to N independent Query() calls,
// for every batch size, batch composition (duplicates, empty, no-candidate
// queries, k beyond the candidate set) and thread count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/simple.h"
#include "core/engine.h"
#include "core/query_batch.h"
#include "datagen/facebook.h"
#include "eval/splits.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

struct Pipeline {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  MgpModel model;
  std::vector<NodeId> users;
};

// One matched engine + a trained model, shared by every test (the batch
// path only reads the finalized index, so reuse is safe).
const Pipeline& SharedPipeline() {
  static const Pipeline* pipeline = [] {
    auto* p = new Pipeline();
    datagen::FacebookConfig cfg;
    cfg.num_users = 220;
    p->ds = datagen::GenerateFacebook(cfg, 47);

    EngineOptions options;
    options.miner.anchor_type = p->ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    options.num_threads = 4;  // BatchQuery must use the pooled path
    p->engine = std::make_unique<SearchEngine>(p->ds.graph, options);
    p->engine->Mine();
    p->engine->MatchAll();

    const GroundTruth* family = p->ds.FindClass("family");
    MX_CHECK(family != nullptr);
    util::Rng rng(9);
    QuerySplit split = SplitQueries(*family, 0.2, rng);
    auto pool = p->ds.graph.NodesOfType(p->ds.user_type);
    std::vector<NodeId> pool_vec(pool.begin(), pool.end());
    auto examples = SampleExamples(*family, split.train, pool_vec, 150, rng);
    TrainOptions train;
    train.max_iterations = 200;
    p->model = p->engine->Train(examples, train);

    p->users.assign(pool.begin(), pool.end());
    return p;
  }();
  return *pipeline;
}

// First `n` user nodes, cycling when n exceeds the pool.
std::vector<NodeId> QueriesOf(size_t n) {
  const Pipeline& p = SharedPipeline();
  std::vector<NodeId> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) queries.push_back(p.users[i % p.users.size()]);
  return queries;
}

// Exact equality, element for element: same nodes, bitwise-same scores.
void ExpectIdenticalToSequential(std::span<const NodeId> queries, size_t k,
                                 const std::vector<QueryResult>& batched) {
  const Pipeline& p = SharedPipeline();
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult sequential = p.engine->Query(p.model, queries[i], k);
    ASSERT_EQ(batched[i].size(), sequential.size())
        << "query #" << i << " (node " << queries[i] << ")";
    for (size_t r = 0; r < sequential.size(); ++r) {
      EXPECT_EQ(batched[i][r].first, sequential[r].first)
          << "query #" << i << " rank " << r;
      EXPECT_EQ(batched[i][r].second, sequential[r].second)
          << "query #" << i << " rank " << r;
    }
  }
}

TEST(BatchQuery, IdenticalToSequentialAcrossBatchSizesAndThreads) {
  const Pipeline& p = SharedPipeline();
  util::ThreadPool one_thread(1);
  util::ThreadPool four_threads(4);
  const std::vector<std::pair<const char*, util::ThreadPool*>> pools = {
      {"no pool", nullptr}, {"1 thread", &one_thread},
      {"4 threads", &four_threads}};
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{64}}) {
    const std::vector<NodeId> queries = QueriesOf(batch_size);
    for (const auto& [name, pool] : pools) {
      SCOPED_TRACE(::testing::Message()
                   << "batch " << batch_size << ", " << name);
      auto batched = BatchRankByProximity(p.engine->index(), p.model.weights,
                                          queries, /*k=*/10, pool);
      ExpectIdenticalToSequential(queries, 10, batched);
    }
  }
}

TEST(BatchQuery, EngineBatchQueryUsesPoolAndMatchesQuery) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  const std::vector<NodeId> queries = QueriesOf(64);
  auto batched = p.engine->BatchQuery(p.model, queries, 10);
  ExpectIdenticalToSequential(queries, 10, batched);
}

TEST(BatchQuery, EmptyBatchReturnsEmpty) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  EXPECT_TRUE(p.engine->BatchQuery(p.model, {}, 10).empty());
  EXPECT_TRUE(BatchRankByProximity(p.engine->index(), p.model.weights, {}, 10)
                  .empty());
}

TEST(BatchQuery, DuplicateQueryNodesEachGetTheSharedResult) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  // Every duplicate must carry the full result, aligned with its position.
  const std::vector<NodeId> queries = {p.users[3], p.users[8], p.users[3],
                                       p.users[3], p.users[8]};
  auto batched = p.engine->BatchQuery(p.model, queries, 10);
  ExpectIdenticalToSequential(queries, 10, batched);
  EXPECT_EQ(batched[0], batched[2]);
  EXPECT_EQ(batched[0], batched[3]);
  EXPECT_EQ(batched[1], batched[4]);
}

TEST(BatchQuery, KLargerThanAnyCandidateSet) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  const std::vector<NodeId> queries = QueriesOf(7);
  const size_t huge_k = p.ds.graph.num_nodes() * 10;
  auto batched = p.engine->BatchQuery(p.model, queries, huge_k);
  ExpectIdenticalToSequential(queries, huge_k, batched);
  for (const auto& result : batched) {
    EXPECT_LT(result.size(), p.ds.graph.num_nodes());
  }
}

TEST(BatchQuery, QueryWithoutCandidatesRanksEmpty) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  // Non-anchor nodes never occupy symmetric positions, so they have no
  // pair slots and an empty candidate set.
  NodeId no_candidates = kInvalidNode;
  for (NodeId v = 0; v < p.ds.graph.num_nodes(); ++v) {
    if (p.engine->index().Candidates(v).empty()) {
      no_candidates = v;
      break;
    }
  }
  ASSERT_NE(no_candidates, kInvalidNode);
  const std::vector<NodeId> queries = {p.users[0], no_candidates, p.users[1]};
  auto batched = p.engine->BatchQuery(p.model, queries, 10);
  ExpectIdenticalToSequential(queries, 10, batched);
  EXPECT_TRUE(batched[1].empty());
}

TEST(BatchQuery, CandidateSlotsAlignWithCandidates) {
  const Pipeline& p = SharedPipeline();
  const MetagraphVectorIndex& index = p.engine->index();
  // SlotDot through the postings must agree with the per-pair hash path.
  for (size_t i = 0; i < p.users.size(); i += 9) {
    const NodeId q = p.users[i];
    auto candidates = index.Candidates(q);
    auto slots = index.CandidateSlots(q);
    ASSERT_EQ(candidates.size(), slots.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      EXPECT_EQ(index.SlotDot(slots[c], p.model.weights),
                index.PairDot(q, candidates[c], p.model.weights));
    }
  }
}

}  // namespace
}  // namespace metaprox
