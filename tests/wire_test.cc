// The v2 wire grammar, table-driven: every request form (v1 and v2
// queries, HELLO, admin verbs), the malformed-line space, builder/parser
// round-trips, structured error lines, and the exact-score round-trip the
// byte-diff smoke rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "server/wire.h"

namespace metaprox::server {
namespace {

using Kind = Request::Kind;

TEST(Wire, ParseRequestAcceptsEveryWellFormedLine) {
  struct Case {
    const char* line;
    Request expected;
  };
  constexpr NodeId kNone = kInvalidNode;
  const std::vector<Case> cases = {
      // v1 queries (model-less; answered by the server's default model).
      {"Q 5", {Kind::kQuery, 5, kNone, 0, "", "", 0}},
      {"Q 5 10", {Kind::kQuery, 5, kNone, 10, "", "", 0}},
      {"Q 0 1", {Kind::kQuery, 0, kNone, 1, "", "", 0}},
      {"Q 4294967295", {Kind::kQuery, 4294967295u, kNone, 0, "", "", 0}},
      // v2 queries: a leading model name (never all digits, so the two
      // forms cannot collide).
      {"Q family 5", {Kind::kQuery, 5, kNone, 0, "family", "", 0}},
      {"Q family 5 10", {Kind::kQuery, 5, kNone, 10, "family", "", 0}},
      {"Q class-2.v1 7 3", {Kind::kQuery, 7, kNone, 3, "class-2.v1", "", 0}},
      // Handshake and probes.
      {"HELLO 1", {Kind::kHello, kNone, kNone, 0, "", "", 1}},
      {"HELLO 2", {Kind::kHello, kNone, kNone, 0, "", "", 2}},
      {"PING", {Kind::kPing, kNone, kNone, 0, "", "", 0}},
      {"STATS", {Kind::kStats, kNone, kNone, 0, "", "", 0}},
      // Admin verbs.
      {"LOAD m /tmp/m.model",
       {Kind::kLoad, kNone, kNone, 0, "m", "/tmp/m.model", 0}},
      {"RELOAD m ./m.model",
       {Kind::kReload, kNone, kNone, 0, "m", "./m.model", 0}},
      {"UNLOAD m", {Kind::kUnload, kNone, kNone, 0, "m", "", 0}},
      {"LIST", {Kind::kList, kNone, kNone, 0, "", "", 0}},
      {"STAT m", {Kind::kStat, kNone, kNone, 0, "m", "", 0}},
      // Index-maintenance verbs.
      {"APPEND N user", {Kind::kAppendNode, kNone, kNone, 0, "user", "", 0}},
      {"APPEND E 3 9", {Kind::kAppendEdge, 3, 9, 0, "", "", 0}},
      {"APPEND E 9 3", {Kind::kAppendEdge, 9, 3, 0, "", "", 0}},
      {"REFRESH", {Kind::kRefresh, kNone, kNone, 0, "", "", 0}},
      {"SWAPINDEX /tmp/idx",
       {Kind::kSwapIndex, kNone, kNone, 0, "", "/tmp/idx", 0}},
  };
  for (const Case& c : cases) {
    Request parsed;
    EXPECT_TRUE(ParseRequest(c.line, &parsed)) << c.line;
    EXPECT_EQ(parsed, c.expected) << c.line;
  }
}

TEST(Wire, ParseRequestRejectsEveryMalformedLine) {
  const std::vector<const char*> cases = {
      "",                      // empty
      "q 5",                   // verbs are case-sensitive
      "Q",                     // missing node
      "Q ",                    // trailing space
      "Q  5",                  // doubled space
      " Q 5",                  // leading space
      "Q 5 ",                  // trailing space after node
      "Q -3",                  // signs are not digits (and not a name)
      "Q 5 0",                 // k = 0 is not a request for "default"
      "Q 5 10 7",              // trailing garbage on a v1 line
      "Q 4294967296",          // node beyond 32 bits
      "Q 99999999999999999999999",  // overflow
      "Q family",              // v2 line missing the node
      "Q family x",            // v2 node not a number
      "Q family 5 0",          // v2 k = 0
      "Q family 5 10 7",       // v2 trailing garbage
      "Q 9family 5",           // names must not start with a digit
      "Q fam ily 5",           // spaces cannot hide in a name
      "Q family 5 k",          // k not a number
      "HELLO",                 // missing version
      "HELLO 0",               // version 0 does not exist
      "HELLO two",             // version not a number
      "HELLO 2 2",             // trailing garbage
      "PING 1",                // probes take no arguments
      "STATS now",             //
      "LIST all",              //
      "LOAD m",                // missing path
      "LOAD /tmp/m.model",     // missing model (path is not a valid name)
      "LOAD 9m /tmp/m.model",  // invalid name
      "LOAD m a b",            // path is one token
      "RELOAD m",              //
      "UNLOAD",                //
      "UNLOAD m extra",        //
      "STAT",                  //
      "STAT m extra",          //
      "APPEND",                // missing subverb
      "APPEND X 1 2",          // unknown subverb
      "APPEND N",              // missing type
      "APPEND N 9type",        // type names follow the name grammar
      "APPEND N user extra",   // one token
      "APPEND E 1",            // missing second endpoint
      "APPEND E 1 x",          // endpoint not a number
      "APPEND E 1 2 3",        // trailing garbage
      "REFRESH now",           // takes no arguments
      "SWAPINDEX",             // missing prefix
      "SWAPINDEX a b",         // prefix is one token
      "BOGUS 1",               // unknown verb
  };
  for (const char* line : cases) {
    Request parsed;
    EXPECT_FALSE(ParseRequest(line, &parsed)) << line;
  }
}

TEST(Wire, BuildersRoundTripThroughTheParser) {
  Request parsed;
  auto strip = [](std::string line) {
    EXPECT_EQ(line.back(), '\n');
    line.pop_back();
    return line;
  };

  constexpr NodeId kNone = kInvalidNode;
  ASSERT_TRUE(ParseRequest(strip(BuildQueryRequest(42, 7)), &parsed));
  EXPECT_EQ(parsed, (Request{Kind::kQuery, 42, kNone, 7, "", "", 0}));
  // k = 0 ("server default") is omitted on the wire, not sent as 0.
  ASSERT_TRUE(ParseRequest(strip(BuildQueryRequest(42, 0)), &parsed));
  EXPECT_EQ(parsed, (Request{Kind::kQuery, 42, kNone, 0, "", "", 0}));
  ASSERT_TRUE(
      ParseRequest(strip(BuildQueryRequest("family", 42, 7)), &parsed));
  EXPECT_EQ(parsed, (Request{Kind::kQuery, 42, kNone, 7, "family", "", 0}));
  ASSERT_TRUE(ParseRequest(strip(BuildHelloRequest(2)), &parsed));
  EXPECT_EQ(parsed, (Request{Kind::kHello, kNone, kNone, 0, "", "", 2}));
  ASSERT_TRUE(ParseRequest(strip(BuildLoadRequest("m", "/p")), &parsed));
  EXPECT_EQ(parsed, (Request{Kind::kLoad, kNone, kNone, 0, "m", "/p", 0}));
  ASSERT_TRUE(ParseRequest(strip(BuildReloadRequest("m", "/p")), &parsed));
  EXPECT_EQ(parsed, (Request{Kind::kReload, kNone, kNone, 0, "m", "/p", 0}));
  ASSERT_TRUE(ParseRequest(strip(BuildUnloadRequest("m")), &parsed));
  EXPECT_EQ(parsed, (Request{Kind::kUnload, kNone, kNone, 0, "m", "", 0}));
  ASSERT_TRUE(ParseRequest(strip(BuildStatRequest("m")), &parsed));
  EXPECT_EQ(parsed, (Request{Kind::kStat, kNone, kNone, 0, "m", "", 0}));
  ASSERT_TRUE(ParseRequest(strip(BuildListRequest()), &parsed));
  EXPECT_EQ(parsed.kind, Kind::kList);
  ASSERT_TRUE(ParseRequest(strip(BuildPingRequest()), &parsed));
  EXPECT_EQ(parsed.kind, Kind::kPing);
  ASSERT_TRUE(ParseRequest(strip(BuildAppendNodeRequest("user")), &parsed));
  EXPECT_EQ(parsed,
            (Request{Kind::kAppendNode, kNone, kNone, 0, "user", "", 0}));
  ASSERT_TRUE(ParseRequest(strip(BuildAppendEdgeRequest(3, 9)), &parsed));
  EXPECT_EQ(parsed, (Request{Kind::kAppendEdge, 3, 9, 0, "", "", 0}));
  ASSERT_TRUE(ParseRequest(strip(BuildRefreshRequest()), &parsed));
  EXPECT_EQ(parsed.kind, Kind::kRefresh);
  ASSERT_TRUE(ParseRequest(strip(BuildSwapIndexRequest("/p")), &parsed));
  EXPECT_EQ(parsed,
            (Request{Kind::kSwapIndex, kNone, kNone, 0, "", "/p", 0}));
}

TEST(Wire, ModelNameGrammar) {
  for (const char* good : {"a", "family", "class-2", "m.v1", "A_b-C.d",
                           "x123456789"}) {
    EXPECT_TRUE(IsValidModelName(good)) << good;
  }
  const std::string max_length(64, 'a');
  EXPECT_TRUE(IsValidModelName(max_length));
  for (const char* bad : {"", "9model", "-model", ".model", "_model",
                          "has space", "has/slash", "has\tttab", "né"}) {
    EXPECT_FALSE(IsValidModelName(bad)) << bad;
  }
  EXPECT_FALSE(IsValidModelName(std::string(65, 'a')));
  // The collision guard the v1/v2 grammar split rests on: no valid name
  // is ever all digits.
  EXPECT_FALSE(IsValidModelName("12345"));
}

TEST(Wire, ErrorResponsesCarryStructuredCodes) {
  const std::string line =
      BuildErrorResponse(ErrorCode::kKTooLarge, "k 900 exceeds server max 64");
  EXPECT_EQ(line, "E 13 k 900 exceeds server max 64\n");
  int code = 0;
  std::string message;
  ASSERT_TRUE(
      ParseErrorResponse(line.substr(0, line.size() - 1), &code, &message));
  EXPECT_EQ(code, static_cast<int>(ErrorCode::kKTooLarge));
  EXPECT_EQ(message, "k 900 exceeds server max 64");

  // Pre-v2 `E <message>` lines still parse (code 0), so a v2 client can
  // talk to an old server.
  ASSERT_TRUE(ParseErrorResponse("E malformed request", &code, &message));
  EXPECT_EQ(code, 0);
  EXPECT_EQ(message, "malformed request");
  ASSERT_TRUE(ParseErrorResponse("E oops", &code, &message));
  EXPECT_EQ(code, 0);
  EXPECT_EQ(message, "oops");

  EXPECT_FALSE(ParseErrorResponse("R 1 0", &code, &message));
  EXPECT_FALSE(ParseErrorResponse("PONG", &code, &message));
}

TEST(Wire, HelloResponseRoundTrips) {
  const std::string line = BuildHelloResponse(2, 1024, "family");
  EXPECT_EQ(line, "HELLO 2 1024 family\n");
  HelloInfo info;
  ASSERT_TRUE(ParseHelloResponse(line.substr(0, line.size() - 1), &info));
  EXPECT_EQ(info, (HelloInfo{2, 1024, "family"}));
  EXPECT_FALSE(ParseHelloResponse("HELLO 2 1024", &info));
  EXPECT_FALSE(ParseHelloResponse("HELLO x 1024 family", &info));
  EXPECT_FALSE(ParseHelloResponse("PONG", &info));
}

TEST(Wire, QueryResponseRoundTripsExactScores) {
  QueryResult result = {{7, 0.1 + 0.2}, {3, 1.0 / 3.0}, {9, 5e-324}};
  const std::string line = BuildQueryResponse(42, result);
  RankResponse parsed;
  ASSERT_TRUE(ParseQueryResponse(line.substr(0, line.size() - 1), &parsed));
  EXPECT_EQ(parsed.query, 42u);
  ASSERT_EQ(parsed.entries.size(), result.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].node, result[i].first);
    // Bitwise equality through the %.17g text round-trip.
    EXPECT_EQ(parsed.entries[i].score, result[i].second);
    EXPECT_EQ(parsed.entries[i].score_text, FormatScore(result[i].second));
  }
  // An 'E' line is NOT a rank response.
  EXPECT_FALSE(ParseQueryResponse("E 11 unknown model m", &parsed));
}

}  // namespace
}  // namespace metaprox::server
