// Positive control for thread_safety_lint.sh: exercises every
// util/thread_annotations.h primitive the codebase uses — MutexLock
// scopes, MX_REQUIRES helpers called under the lock, MX_EXCLUDES entry
// points, TryLock, and a manual CondVar wait loop (the cv-wait shape all
// converted classes use, since the analysis cannot see lock state inside
// a wait-with-predicate lambda). Must compile CLEAN under clang
// -Wthread-safety -Werror; if it ever stops, the annotations themselves
// regressed, not the checked code.
#include "util/thread_annotations.h"

#include <deque>

namespace metaprox {

class WorkQueue {
 public:
  void Push(int v) MX_EXCLUDES(mu_) {
    {
      mx::MutexLock lock(mu_);
      queue_.push_back(v);
      PushedLocked();
    }
    ready_.NotifyOne();
  }

  int BlockingPop() MX_EXCLUDES(mu_) {
    mx::MutexLock lock(mu_);
    while (queue_.empty()) ready_.Wait(lock);
    int v = queue_.front();
    queue_.pop_front();
    return v;
  }

  bool TryBump() MX_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    ++pushes_;
    mu_.Unlock();
    return true;
  }

 private:
  void PushedLocked() MX_REQUIRES(mu_) { ++pushes_; }

  mx::Mutex mu_;
  mx::CondVar ready_;
  std::deque<int> queue_ MX_GUARDED_BY(mu_);
  long pushes_ MX_GUARDED_BY(mu_) = 0;
};

int Use() {
  WorkQueue q;
  q.Push(1);
  q.TryBump();
  return q.BlockingPop();
}

}  // namespace metaprox
