#!/usr/bin/env bash
# thread_safety_lint: negative-compile proof that the -Wthread-safety
# gate actually fires. Compiles the snippets in this directory against
# the real util/thread_annotations.h:
#
#   good_annotated_usage.cc       must compile CLEAN (positive control —
#                                 catches a broken macro that would also
#                                 silence the gate everywhere)
#   bad_unguarded_read.cc         must be REJECTED, with a thread-safety
#   bad_requires_without_lock.cc  diagnostic (not some unrelated error)
#
# The annotations only exist under clang. With any other compiler the
# snippets are syntax-checked (they must stay valid C++ with the macros
# compiled away) and the test reports SKIP via exit 77 — CMake registers
# that as the ctest SKIP_RETURN_CODE, and CI's warnings-clang job runs
# the real assertion.
#
# Usage: thread_safety_lint.sh <c++-compiler> <repo-root>
set -u

cxx="${1:?usage: thread_safety_lint.sh <c++-compiler> <repo-root>}"
root="${2:?usage: thread_safety_lint.sh <c++-compiler> <repo-root>}"
dir="$root/tests/negative"
flags="-std=c++20 -I$root/src -fsyntax-only"
snippets="good_annotated_usage bad_unguarded_read bad_requires_without_lock"

for f in $snippets; do
  if [ ! -f "$dir/$f.cc" ]; then
    echo "thread_safety_lint: missing snippet $dir/$f.cc" >&2
    exit 1
  fi
done

if ! "$cxx" --version 2>/dev/null | grep -qi clang; then
  for f in $snippets; do
    if ! "$cxx" $flags "$dir/$f.cc"; then
      echo "thread_safety_lint: $f.cc is not valid C++ even with the" \
           "annotations compiled away" >&2
      exit 1
    fi
  done
  echo "thread_safety_lint: SKIP ($cxx is not clang — snippets" \
       "syntax-checked only; the warnings-clang CI job runs the gate)"
  exit 77
fi

tsa="-Wthread-safety -Werror"
fail=0

if ! err=$("$cxx" $flags $tsa "$dir/good_annotated_usage.cc" 2>&1); then
  echo "thread_safety_lint: good_annotated_usage.cc must compile clean" \
       "under $tsa but failed:" >&2
  printf '%s\n' "$err" >&2
  fail=1
fi

for bad in bad_unguarded_read bad_requires_without_lock; do
  if err=$("$cxx" $flags $tsa "$dir/$bad.cc" 2>&1); then
    echo "thread_safety_lint: $bad.cc compiled, but the annotations" \
         "require clang to REJECT it — the gate is not firing" >&2
    fail=1
  elif ! printf '%s\n' "$err" | grep -q "thread-safety"; then
    echo "thread_safety_lint: $bad.cc failed to compile, but for a" \
         "reason other than a thread-safety diagnostic:" >&2
    printf '%s\n' "$err" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "thread_safety_lint: OK (positive control clean, 2 bad snippets" \
       "rejected with thread-safety diagnostics)"
fi
exit "$fail"
