// Negative-compile snippet: calls an MX_REQUIRES(mu_) method without
// holding mu_. Clang -Wthread-safety must REJECT this translation unit
// ("calling function 'PushLocked' requires holding mutex 'mu_'") — the
// same contract that protects QueryServer::TrySendLocked, this repo's
// one real REQUIRES site. Valid C++ otherwise, so GCC accepts it.
#include "util/thread_annotations.h"

namespace metaprox {

class Box {
 public:
  void PushLocked() MX_REQUIRES(mu_) { ++size_; }

  // BAD: PushLocked requires mu_, and this caller never takes it.
  void Push() { PushLocked(); }

 private:
  mx::Mutex mu_;
  int size_ MX_GUARDED_BY(mu_) = 0;
};

void Use() { Box{}.Push(); }

}  // namespace metaprox
