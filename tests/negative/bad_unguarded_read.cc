// Negative-compile snippet: reads an MX_GUARDED_BY field without holding
// its mutex. Clang -Wthread-safety must REJECT this translation unit
// ("reading variable 'value_' requires holding mutex 'mu_'") — that
// rejection is what tests/negative/thread_safety_lint.sh asserts. The
// code is deliberately valid C++ otherwise, so GCC (where the
// annotations compile away) accepts it.
#include "util/thread_annotations.h"

namespace metaprox {

class Counter {
 public:
  // BAD: value_ is guarded by mu_, and mu_ is not held here.
  int Get() const { return value_; }

  void Bump() {
    mx::MutexLock lock(mu_);
    ++value_;
  }

 private:
  mutable mx::Mutex mu_;
  int value_ MX_GUARDED_BY(mu_) = 0;
};

int Use() { return Counter{}.Get(); }

}  // namespace metaprox
