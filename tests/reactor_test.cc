// The reactor substrate in isolation: LineBuffer's incremental line
// splitting and overflow poisoning, the nonblocking socket primitives
// (RecvSome/SendSome/IoChunk) on a socketpair, and EpollLoop's
// registration/readiness/wake semantics — everything the QueryServer's
// event loop is built on, tested without a server in the way.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "server/reactor.h"
#include "util/socket.h"

namespace metaprox {
namespace {

using server::EpollLoop;
using util::IoChunk;
using util::LineBuffer;
using util::Socket;

TEST(LineBuffer, SplitsIncrementalAppendsIntoLines) {
  LineBuffer buffer;
  std::string line;
  EXPECT_FALSE(buffer.TakeLine(&line));

  buffer.Append("PI");
  EXPECT_FALSE(buffer.TakeLine(&line));  // no terminator yet
  buffer.Append("NG\nQ 3");
  ASSERT_TRUE(buffer.TakeLine(&line));
  EXPECT_EQ(line, "PING");
  EXPECT_FALSE(buffer.TakeLine(&line));  // "Q 3" incomplete
  EXPECT_EQ(buffer.pending_bytes(), 3u);

  buffer.Append(" 10\nQ 4 10\n");
  ASSERT_TRUE(buffer.TakeLine(&line));
  EXPECT_EQ(line, "Q 3 10");
  ASSERT_TRUE(buffer.TakeLine(&line));
  EXPECT_EQ(line, "Q 4 10");
  EXPECT_FALSE(buffer.TakeLine(&line));
  EXPECT_EQ(buffer.pending_bytes(), 0u);
}

TEST(LineBuffer, StripsCarriageReturnAndHandlesEmptyLines) {
  LineBuffer buffer;
  buffer.Append("STATS\r\n\r\nPING\n");
  std::string line;
  ASSERT_TRUE(buffer.TakeLine(&line));
  EXPECT_EQ(line, "STATS");
  ASSERT_TRUE(buffer.TakeLine(&line));
  EXPECT_EQ(line, "");  // a bare "\r\n" is an empty line
  ASSERT_TRUE(buffer.TakeLine(&line));
  EXPECT_EQ(line, "PING");
}

TEST(LineBuffer, OverflowPoisonsTheBuffer) {
  LineBuffer buffer(/*max_line_bytes=*/16);
  buffer.Append(std::string(40, 'x'));  // no newline in sight
  std::string line;
  EXPECT_FALSE(buffer.TakeLine(&line));
  EXPECT_TRUE(buffer.overflowed());
  // Poisoned for good: even a terminator arriving later doesn't revive
  // it — the peer already proved it can't be trusted with this bound.
  buffer.Append("\nPING\n");
  EXPECT_FALSE(buffer.TakeLine(&line));
  EXPECT_TRUE(buffer.overflowed());
}

TEST(LineBuffer, CompactsConsumedPrefix) {
  LineBuffer buffer;
  std::string line;
  // Enough consumed traffic to trip the internal compaction threshold;
  // correctness (not memory) is what's asserted — lines keep coming out
  // right across compactions.
  for (int round = 0; round < 100; ++round) {
    buffer.Append("Q " + std::to_string(round) + " " +
                  std::string(100, '7') + "\n");
    ASSERT_TRUE(buffer.TakeLine(&line));
    EXPECT_EQ(line.substr(0, 2), "Q ");
    EXPECT_EQ(buffer.pending_bytes(), 0u);
  }
}

// A nonblocking AF_UNIX socketpair: both ends owned, both nonblocking.
struct Pair {
  Socket a;
  Socket b;
};

Pair MakePair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Pair pair{Socket(fds[0]), Socket(fds[1])};
  EXPECT_TRUE(util::SetNonBlocking(pair.a).ok());
  EXPECT_TRUE(util::SetNonBlocking(pair.b).ok());
  return pair;
}

TEST(NonblockingIo, RecvSomeReportsWouldBlockDataAndEof) {
  Pair pair = MakePair();
  char buf[64];

  auto idle = util::RecvSome(pair.a, buf, sizeof(buf));
  ASSERT_TRUE(idle.ok());
  EXPECT_TRUE(idle->would_block);
  EXPECT_FALSE(idle->eof);

  ASSERT_TRUE(util::SendAll(pair.b, "hello").ok());
  auto data = util::RecvSome(pair.a, buf, sizeof(buf));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->bytes, 5u);
  EXPECT_EQ(std::string(buf, 5), "hello");

  pair.b.Close();
  auto eof = util::RecvSome(pair.a, buf, sizeof(buf));
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof->eof);
}

TEST(NonblockingIo, SendSomeFillsTheBufferThenWouldBlocks) {
  Pair pair = MakePair();
  const std::string chunk(4096, 'z');
  size_t sent_total = 0;
  bool saw_would_block = false;
  // An unread peer has finite buffering; a nonblocking sender must see
  // would_block instead of hanging (this is the property the reactor's
  // backpressure is built on).
  for (int i = 0; i < 10000 && !saw_would_block; ++i) {
    auto chunk_result = util::SendSome(pair.a, chunk);
    ASSERT_TRUE(chunk_result.ok());
    if (chunk_result->would_block) {
      saw_would_block = true;
    } else {
      sent_total += chunk_result->bytes;
    }
  }
  EXPECT_TRUE(saw_would_block);
  EXPECT_GT(sent_total, 0u);

  // Draining the peer makes the sender writable again, and every byte
  // arrives intact.
  size_t received_total = 0;
  char buf[8192];
  while (received_total < sent_total) {
    auto got = util::RecvSome(pair.b, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    ASSERT_FALSE(got->eof);
    if (got->would_block) break;
    received_total += got->bytes;
  }
  EXPECT_EQ(received_total, sent_total);
  auto again = util::SendSome(pair.a, chunk);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->would_block);
}

TEST(EpollLoop, ReportsReadinessUnderTheRegisteredTag) {
  auto loop = EpollLoop::Create();
  ASSERT_TRUE(loop.ok()) << loop.status().ToString();
  Pair pair = MakePair();
  ASSERT_TRUE(loop->Add(pair.a.fd(), /*tag=*/42, /*want_read=*/true,
                        /*want_write=*/false)
                  .ok());

  std::vector<EpollLoop::Event> events;
  auto idle = loop->Wait(/*timeout_millis=*/0, &events);
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(*idle, 0u);  // nothing readable yet

  ASSERT_TRUE(util::SendAll(pair.b, "x").ok());
  auto ready = loop->Wait(/*timeout_millis=*/1000, &events);
  ASSERT_TRUE(ready.ok());
  ASSERT_EQ(*ready, 1u);
  EXPECT_EQ(events[0].tag, 42u);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);

  // Level-triggered: still readable until drained.
  auto again = loop->Wait(/*timeout_millis=*/0, &events);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(*again, 1u);
  char buf[8];
  ASSERT_TRUE(util::RecvSome(pair.a, buf, sizeof(buf)).ok());
  auto drained = loop->Wait(/*timeout_millis=*/0, &events);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(*drained, 0u);

  ASSERT_TRUE(loop->Del(pair.a.fd()).ok());
}

TEST(EpollLoop, ModSwitchesInterestBetweenReadAndWrite) {
  auto loop = EpollLoop::Create();
  ASSERT_TRUE(loop.ok());
  Pair pair = MakePair();
  // Write interest on an empty socket buffer: immediately writable.
  ASSERT_TRUE(loop->Add(pair.a.fd(), 7, /*want_read=*/false,
                        /*want_write=*/true)
                  .ok());
  std::vector<EpollLoop::Event> events;
  auto writable = loop->Wait(1000, &events);
  ASSERT_TRUE(writable.ok());
  ASSERT_EQ(*writable, 1u);
  EXPECT_TRUE(events[0].writable);

  // Interest off entirely: no events even though the fd stays writable.
  ASSERT_TRUE(loop->Mod(pair.a.fd(), 7, false, false).ok());
  auto muted = loop->Wait(0, &events);
  ASSERT_TRUE(muted.ok());
  EXPECT_EQ(*muted, 0u);
}

TEST(EpollLoop, WakeFromAnotherThreadInterruptsWait) {
  auto loop = EpollLoop::Create();
  ASSERT_TRUE(loop.ok());
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop->Wake();
  });
  std::vector<EpollLoop::Event> events;
  // Without the Wake this Wait would run the full 10 seconds and the
  // test would time out on the assertion below.
  auto woken = loop->Wait(10000, &events);
  waker.join();
  ASSERT_TRUE(woken.ok());
  ASSERT_EQ(*woken, 1u);
  EXPECT_EQ(events[0].tag, EpollLoop::kWakeTag);

  // Wakes coalesce: three Wakes, one event, then silence.
  loop->Wake();
  loop->Wake();
  loop->Wake();
  auto coalesced = loop->Wait(1000, &events);
  ASSERT_TRUE(coalesced.ok());
  ASSERT_EQ(*coalesced, 1u);
  auto silent = loop->Wait(0, &events);
  ASSERT_TRUE(silent.ok());
  EXPECT_EQ(*silent, 0u);
}

}  // namespace
}  // namespace metaprox
