#include <gtest/gtest.h>

#include <cmath>

#include "index/metagraph_vectors.h"
#include "matching/matcher.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

// Every index-behavior test runs once per serialization round trip (see
// test_helpers.h): the semantics below must hold identically for a
// directly built index and for one restored from each persistence format,
// including a memory-mapped artifact.
class IndexTest : public ::testing::TestWithParam<testing::IndexRoundTrip> {};

INSTANTIATE_TEST_SUITE_P(
    Formats, IndexTest,
    ::testing::Values(testing::IndexRoundTrip::kDirect,
                      testing::IndexRoundTrip::kText,
                      testing::IndexRoundTrip::kBinaryCompact,
                      testing::IndexRoundTrip::kBinaryAligned,
                      testing::IndexRoundTrip::kMapped),
    [](const ::testing::TestParamInfo<testing::IndexRoundTrip>& info) {
      return testing::IndexRoundTripName(info.param);
    });

// Builds an index over the toy graph for the given metagraphs using SymISO,
// then sends it through the requested serialization round trip.
MetagraphVectorIndex BuildToyIndex(const testing::ToyGraph& toy,
                                   const std::vector<Metagraph>& metagraphs,
                                   CountTransform transform,
                                   testing::IndexRoundTrip mode,
                                   std::vector<SymmetryInfo>* syms = nullptr) {
  MetagraphVectorIndex index(metagraphs.size(), toy.graph.num_nodes(),
                             transform);
  auto matcher = CreateMatcher(MatcherKind::kSymISO);
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
    SymPairCountingSink sink(sym, UINT64_MAX);
    matcher->Match(toy.graph, metagraphs[i], &sink);
    index.Commit(i, sink, sym.aut_size());
    if (syms != nullptr) syms->push_back(sym);
  }
  index.Finalize();
  return testing::ApplyRoundTrip(std::move(index), mode);
}

TEST_P(IndexTest, Eq1CountsOnToyGraph) {
  auto toy = testing::MakeToyGraph();
  // M3: user-address-user.
  std::vector<Metagraph> metagraphs = {
      MakePath({toy.user, toy.address, toy.user})};
  MetagraphVectorIndex index =
      BuildToyIndex(toy, metagraphs, CountTransform::kRaw, GetParam());

  std::vector<double> w = {1.0};
  // m_{alice,bob}[M3] = 1 (shared Green St) -> PairDot = 1.
  EXPECT_DOUBLE_EQ(index.PairDot(toy.alice, toy.bob, w), 1.0);
  EXPECT_DOUBLE_EQ(index.PairDot(toy.kate, toy.jay, w), 1.0);
  EXPECT_DOUBLE_EQ(index.PairDot(toy.alice, toy.kate, w), 0.0);
  EXPECT_DOUBLE_EQ(index.PairDot(toy.bob, toy.tom, w), 0.0);
}

TEST_P(IndexTest, Eq2CountsOnToyGraph) {
  auto toy = testing::MakeToyGraph();
  std::vector<Metagraph> metagraphs = {
      MakePath({toy.user, toy.school, toy.user})};
  MetagraphVectorIndex index =
      BuildToyIndex(toy, metagraphs, CountTransform::kRaw, GetParam());

  std::vector<double> w = {1.0};
  // Each of Kate, Jay, Bob, Tom appears in exactly one user-school-user
  // instance at a symmetric position; Alice in none.
  EXPECT_DOUBLE_EQ(index.NodeDot(toy.kate, w), 1.0);
  EXPECT_DOUBLE_EQ(index.NodeDot(toy.jay, w), 1.0);
  EXPECT_DOUBLE_EQ(index.NodeDot(toy.bob, w), 1.0);
  EXPECT_DOUBLE_EQ(index.NodeDot(toy.tom, w), 1.0);
  EXPECT_DOUBLE_EQ(index.NodeDot(toy.alice, w), 0.0);
}

TEST_P(IndexTest, AutomorphismDivisionYieldsInstanceCounts) {
  auto toy = testing::MakeToyGraph();
  // M1 (school+major): Kate-Jay share school AND major; the metagraph has
  // aut size 2, and the pair count must be 1 instance (not 2 embeddings).
  Metagraph m1;
  MetaNodeId u1 = m1.AddNode(toy.user);
  MetaNodeId u2 = m1.AddNode(toy.user);
  MetaNodeId s = m1.AddNode(toy.school);
  MetaNodeId j = m1.AddNode(toy.major);
  m1.AddEdge(u1, s);
  m1.AddEdge(u2, s);
  m1.AddEdge(u1, j);
  m1.AddEdge(u2, j);
  MetagraphVectorIndex index =
      BuildToyIndex(toy, {m1}, CountTransform::kRaw, GetParam());
  std::vector<double> w = {1.0};
  EXPECT_DOUBLE_EQ(index.PairDot(toy.kate, toy.jay, w), 1.0);
  EXPECT_DOUBLE_EQ(index.PairDot(toy.bob, toy.tom, w), 1.0);
  EXPECT_DOUBLE_EQ(index.PairDot(toy.alice, toy.bob, w), 0.0);
}

TEST_P(IndexTest, MultipleMetagraphVectors) {
  auto toy = testing::MakeToyGraph();
  std::vector<Metagraph> metagraphs = {
      MakePath({toy.user, toy.address, toy.user}),
      MakePath({toy.user, toy.school, toy.user}),
      MakePath({toy.user, toy.employer, toy.user})};
  MetagraphVectorIndex index =
      BuildToyIndex(toy, metagraphs, CountTransform::kRaw, GetParam());

  std::vector<double> dense;
  index.DensePairVector(toy.kate, toy.jay, &dense);
  ASSERT_EQ(dense.size(), 3u);
  EXPECT_DOUBLE_EQ(dense[0], 1.0);  // shared address
  EXPECT_DOUBLE_EQ(dense[1], 1.0);  // shared school
  EXPECT_DOUBLE_EQ(dense[2], 0.0);  // no shared employer

  index.DensePairVector(toy.kate, toy.alice, &dense);
  EXPECT_DOUBLE_EQ(dense[0], 0.0);
  EXPECT_DOUBLE_EQ(dense[2], 1.0);  // Company X
}

TEST_P(IndexTest, Log1pTransform) {
  auto toy = testing::MakeToyGraph();
  std::vector<Metagraph> metagraphs = {
      MakePath({toy.user, toy.address, toy.user})};
  MetagraphVectorIndex raw =
      BuildToyIndex(toy, metagraphs, CountTransform::kRaw, GetParam());
  MetagraphVectorIndex logged =
      BuildToyIndex(toy, metagraphs, CountTransform::kLog1p, GetParam());
  std::vector<double> w = {1.0};
  EXPECT_DOUBLE_EQ(raw.PairDot(toy.alice, toy.bob, w), 1.0);
  EXPECT_DOUBLE_EQ(logged.PairDot(toy.alice, toy.bob, w),
                   std::log1p(1.0));
}

TEST_P(IndexTest, CandidatesPostings) {
  auto toy = testing::MakeToyGraph();
  std::vector<Metagraph> metagraphs = {
      MakePath({toy.user, toy.school, toy.user}),
      MakePath({toy.user, toy.employer, toy.user})};
  MetagraphVectorIndex index =
      BuildToyIndex(toy, metagraphs, CountTransform::kRaw, GetParam());

  auto kate_cands = index.Candidates(toy.kate);
  // Kate shares a school instance with Jay and an employer instance with
  // Alice.
  EXPECT_EQ(kate_cands.size(), 2u);
  bool has_jay = false, has_alice = false;
  for (NodeId v : kate_cands) {
    has_jay |= (v == toy.jay);
    has_alice |= (v == toy.alice);
  }
  EXPECT_TRUE(has_jay);
  EXPECT_TRUE(has_alice);

  EXPECT_TRUE(index.Candidates(toy.music).empty());
}

TEST_P(IndexTest, SparseAccessorsMatchDense) {
  auto toy = testing::MakeToyGraph();
  std::vector<Metagraph> metagraphs = {
      MakePath({toy.user, toy.address, toy.user}),
      MakePath({toy.user, toy.school, toy.user})};
  MetagraphVectorIndex index =
      BuildToyIndex(toy, metagraphs, CountTransform::kLog1p, GetParam());

  std::vector<double> dense;
  index.DenseNodeVector(toy.kate, &dense);
  std::vector<std::pair<uint32_t, double>> sparse;
  index.SparseNodeVector(toy.kate, &sparse);
  double sum_dense = 0.0, sum_sparse = 0.0;
  for (double v : dense) sum_dense += v;
  for (auto& [i, v] : sparse) sum_sparse += v;
  EXPECT_DOUBLE_EQ(sum_dense, sum_sparse);
}

TEST_P(IndexTest, UncommittedMetagraphsContributeNothing) {
  auto toy = testing::MakeToyGraph();
  MetagraphVectorIndex built(2, toy.graph.num_nodes(), CountTransform::kRaw);
  // Commit only metagraph 0.
  Metagraph m = MakePath({toy.user, toy.address, toy.user});
  SymmetryInfo sym = AnalyzeSymmetry(m);
  SymPairCountingSink sink(sym, UINT64_MAX);
  CreateMatcher(MatcherKind::kSymISO)->Match(toy.graph, m, &sink);
  built.Commit(0, sink, sym.aut_size());
  built.Finalize();
  MetagraphVectorIndex index =
      testing::ApplyRoundTrip(std::move(built), GetParam());

  EXPECT_TRUE(index.IsCommitted(0));
  EXPECT_FALSE(index.IsCommitted(1));
  std::vector<double> w = {0.0, 1.0};  // weight only the uncommitted one
  EXPECT_DOUBLE_EQ(index.PairDot(toy.alice, toy.bob, w), 0.0);
}

TEST(Index, SinkSaturation) {
  auto toy = testing::MakeToyGraph();
  Metagraph m = MakePath({toy.user, toy.school, toy.user});
  SymmetryInfo sym = AnalyzeSymmetry(m);
  SymPairCountingSink sink(sym, /*embedding_cap=*/2);
  CreateMatcher(MatcherKind::kQuickSI)->Match(toy.graph, m, &sink);
  EXPECT_EQ(sink.num_embeddings(), 2u);
  EXPECT_TRUE(sink.saturated());
}

}  // namespace
}  // namespace metaprox
