// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P): the
// same invariant checked across a grid of random-instance seeds.
#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "index/metagraph_vectors.h"
#include "mining/miner.h"
#include "learning/proximity.h"
#include "matching/matcher.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace metaprox {
namespace {

// ---- all matchers agree with brute force, across random worlds ----------

class MatcherAgreementSweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherAgreementSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

TEST_P(MatcherAgreementSweep, AllKernelsMatchBruteForce) {
  const uint64_t seed = GetParam();
  Graph g = testing::MakeRandomGraph(22, 3, 4.0, seed);
  util::Rng rng(seed * 31 + 1);
  for (int trial = 0; trial < 5; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(3)), 3, rng);
    const uint64_t expected = testing::BruteForceCountEmbeddings(g, m);
    for (MatcherKind kind :
         {MatcherKind::kQuickSI, MatcherKind::kTurboISO,
          MatcherKind::kBoostISO, MatcherKind::kSymISO,
          MatcherKind::kSymISORandom}) {
      CountingSink sink;
      CreateMatcher(kind, seed)->Match(g, m, &sink);
      EXPECT_EQ(sink.count(), expected)
          << MatcherKindName(kind) << " seed=" << seed;
    }
  }
}

// ---- Theorem 1 invariants of MGP across random worlds -------------------

class MgpInvariantSweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MgpInvariantSweep,
                         ::testing::Values(3u, 13u, 23u, 43u, 53u));

TEST_P(MgpInvariantSweep, SymmetrySelfMaxScaleInvariance) {
  const uint64_t seed = GetParam();
  Graph g = testing::MakeRandomGraph(60, 3, 5.0, seed);

  // Index two random symmetric-friendly patterns.
  std::vector<Metagraph> metagraphs = {MakePath({0, 1, 0}),
                                       MakePath({0, 2, 0})};
  MetagraphVectorIndex index(metagraphs.size(), g.num_nodes(),
                             CountTransform::kRaw);
  auto matcher = CreateMatcher(MatcherKind::kSymISO);
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
    SymPairCountingSink sink(sym, UINT64_MAX);
    matcher->Match(g, metagraphs[i], &sink);
    index.Commit(i, sink, sym.aut_size());
  }
  index.Finalize();

  util::Rng rng(seed + 99);
  auto anchors = g.NodesOfType(0);
  if (anchors.size() < 3) GTEST_SKIP();
  std::vector<double> w = {rng.UniformDouble(0.1, 1.0),
                           rng.UniformDouble(0.1, 1.0)};
  const double c = rng.UniformDouble(0.5, 3.0);
  std::vector<double> cw = {c * w[0], c * w[1]};

  for (int probes = 0; probes < 30; ++probes) {
    NodeId x = anchors[rng.UniformInt(anchors.size())];
    NodeId y = anchors[rng.UniformInt(anchors.size())];
    const double pi_xy = MgpProximity(index, w, x, y);
    EXPECT_DOUBLE_EQ(pi_xy, MgpProximity(index, w, y, x));
    EXPECT_GE(pi_xy, 0.0);
    EXPECT_LE(pi_xy, 1.0);
    EXPECT_DOUBLE_EQ(MgpProximity(index, w, x, x), 1.0);
    EXPECT_NEAR(pi_xy, MgpProximity(index, cw, x, y), 1e-12);
  }
}

// ---- metric invariants over random rankings ------------------------------

class MetricInvariantSweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MetricInvariantSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST_P(MetricInvariantSweep, BoundsAndFrontInsertionMonotonicity) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    // Random ranking of 20 ids, random relevant subset.
    std::vector<NodeId> ranked(20);
    for (size_t i = 0; i < ranked.size(); ++i) {
      ranked[i] = static_cast<NodeId>(100 + i);
    }
    rng.Shuffle(ranked);
    std::unordered_set<NodeId> relevant;
    for (NodeId v : ranked) {
      if (rng.Bernoulli(0.3)) relevant.insert(v);
    }
    NodeId fresh = 999;  // relevant item not yet in the ranking
    relevant.insert(fresh);
    const size_t total = relevant.size();

    double ndcg = NdcgAtK(ranked, relevant, total, 10);
    double ap = AveragePrecisionAtK(ranked, relevant, total, 10);
    EXPECT_GE(ndcg, 0.0);
    EXPECT_LE(ndcg, 1.0);
    EXPECT_GE(ap, 0.0);
    EXPECT_LE(ap, 1.0);

    // Prepending a relevant result can only help (or tie).
    std::vector<NodeId> better;
    better.push_back(fresh);
    better.insert(better.end(), ranked.begin(), ranked.end());
    EXPECT_GE(NdcgAtK(better, relevant, total, 10) + 1e-12, ndcg);
    EXPECT_GE(AveragePrecisionAtK(better, relevant, total, 10) + 1e-12, ap);
  }
}

// ---- miner output validity across random graphs --------------------------

class MinerValiditySweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MinerValiditySweep,
                         ::testing::Values(7u, 17u, 27u));

TEST_P(MinerValiditySweep, OutputsAreValidFrequentPatterns) {
  Graph g = testing::MakeRandomGraph(120, 3, 5.0, GetParam());
  MinerOptions options;
  options.anchor_type = 0;
  options.min_support = 2;
  options.max_nodes = 4;
  auto mined = MineMetagraphs(g, options);
  auto matcher = CreateMatcher(MatcherKind::kBoostISO);
  for (const auto& m : mined) {
    EXPECT_TRUE(m.graph.IsConnected());
    EXPECT_TRUE(m.symmetry.is_symmetric);
    EXPECT_GE(m.support, options.min_support);
    // Every feasible edge type pair in the pattern exists in the graph.
    for (auto [a, b] : m.graph.Edges()) {
      EXPECT_GT(g.EdgeCountBetweenTypes(m.graph.TypeOf(a),
                                        m.graph.TypeOf(b)),
                0u);
    }
    // The pattern actually has embeddings.
    CountingSink sink(1);
    matcher->Match(g, m.graph, &sink);
    EXPECT_GE(sink.count(), 1u);
  }
}

}  // namespace
}  // namespace metaprox
