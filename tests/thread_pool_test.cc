// util::ThreadPool: task execution, result futures, exception propagation,
// and drain-on-destruction semantics.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace metaprox::util {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, FuturesCarryResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("matching task failed"); });
  EXPECT_EQ(ok.get(), 7);
  try {
    bad.get();
    FAIL() << "expected the task's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "matching task failed");
  }
  // The pool must stay usable after a task threw.
  EXPECT_EQ(pool.Submit([] { return 11; }).get(), 11);
}

TEST(ThreadPool, ZeroResolvesToHardwareConcurrency) {
  EXPECT_GE(ResolveNumThreads(0), 1u);
  EXPECT_EQ(ResolveNumThreads(5), 5u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ResolveNumThreads(0));
}

TEST(ThreadPool, AbsurdRequestsAreClamped) {
  // A -1 wrapped through an unsigned option must not spawn 4 billion
  // threads.
  EXPECT_EQ(ResolveNumThreads(static_cast<size_t>(-1)), kMaxThreads);
  EXPECT_EQ(ResolveNumThreads(kMaxThreads + 1), kMaxThreads);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);  // single worker => tasks queue up behind the sleep
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor joins only after the queue is drained
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (long i = 1; i <= 1000; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 1000L * 1001L / 2);
}

}  // namespace
}  // namespace metaprox::util
