// server::IndexRegistry under concurrency: readers pin generations while a
// writer publishes refreshed snapshots, pinned generations answer exactly
// as they did when pinned, and the publication refusal rules (null,
// metagraph-count mismatch, shrinking graph) hold. Runs under TSan in CI
// (label `concurrency`).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/index_maintainer.h"
#include "datagen/facebook.h"
#include "server/index_registry.h"

namespace metaprox {
namespace {

using server::IndexRegistry;

struct Base {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  std::vector<NodeId> users;
  MgpModel model;
};

const Base& SharedBase() {
  static const Base* base = [] {
    auto* b = new Base();
    datagen::FacebookConfig cfg;
    cfg.num_users = 90;
    b->ds = datagen::GenerateFacebook(cfg, 13);
    EngineOptions options;
    options.miner.anchor_type = b->ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    b->engine = std::make_unique<SearchEngine>(b->ds.graph, options);
    b->engine->Mine();
    b->engine->MatchAll();
    auto pool = b->ds.graph.NodesOfType(b->ds.user_type);
    b->users.assign(pool.begin(), pool.end());
    b->model.weights.assign(b->engine->metagraphs().size(), 1.0);
    return b;
  }();
  return *base;
}

TEST(IndexRegistry, PublishSwapsAndInfoTracks) {
  const Base& base = SharedBase();
  IndexRegistry registry(base.engine->Snapshot());
  auto initial = registry.Get();
  ASSERT_NE(initial, nullptr);
  EXPECT_EQ(registry.Info().generation, initial->generation());
  EXPECT_EQ(registry.Info().publishes, 0u);
  EXPECT_EQ(registry.Info().num_nodes, base.ds.graph.num_nodes());

  IndexMaintainer maintainer(*base.engine);
  ASSERT_TRUE(maintainer.AppendEdge(base.users[0], base.users[3]).ok());
  auto refreshed = maintainer.Refresh();
  ASSERT_TRUE(refreshed.ok());
  ASSERT_TRUE(registry.Publish(*refreshed).ok());
  EXPECT_EQ(registry.Get().get(), refreshed->get());
  EXPECT_EQ(registry.Info().publishes, 1u);
  EXPECT_EQ(registry.Info().generation, (*refreshed)->generation());
}

TEST(IndexRegistry, RefusesNullMismatchedAndShrinkingSnapshots) {
  const Base& base = SharedBase();

  // Grow the graph by a node, then ask the registry to go back to the
  // engine's original (smaller) generation: refused, node ids already
  // validated against the live graph must stay valid.
  IndexMaintainer maintainer(*base.engine);
  maintainer.AppendNode("user", "grown");
  ASSERT_TRUE(
      maintainer.AppendEdge(base.ds.graph.num_nodes(), base.users[1]).ok());
  auto grown = maintainer.Refresh();
  ASSERT_TRUE(grown.ok());

  IndexRegistry registry(*grown);
  EXPECT_FALSE(registry.Publish(nullptr).ok());
  auto shrink = registry.Publish(base.engine->Snapshot());
  EXPECT_FALSE(shrink.ok());
  EXPECT_NE(shrink.ToString().find("fewer"), std::string::npos)
      << shrink.ToString();

  // A snapshot over a different metagraph set (coarser mining ceiling =
  // deterministically fewer metagraphs here): loaded models would stop
  // matching the index, refused.
  EngineOptions options = base.engine->options();
  options.miner.max_nodes = 3;
  SearchEngine smaller(base.ds.graph, options);
  smaller.Mine();
  smaller.MatchAll();
  ASSERT_NE(smaller.metagraphs().size(), base.engine->metagraphs().size());
  EXPECT_FALSE(registry.Publish(smaller.Snapshot()).ok());

  // The failed publishes left the registry serving the grown snapshot.
  EXPECT_EQ(registry.Get().get(), grown->get());
  EXPECT_EQ(registry.Info().publishes, 0u);
}

TEST(IndexRegistry, ReadersPinGenerationsWhilePublishesRace) {
  const Base& base = SharedBase();

  // Three generations over the SAME node count (edge-only growth), so
  // they are mutually publishable in any order.
  IndexMaintainer maintainer(*base.engine);
  std::vector<std::shared_ptr<const IndexSnapshot>> generations;
  generations.push_back(maintainer.snapshot());
  for (int g = 0; g < 2; ++g) {
    ASSERT_TRUE(
        maintainer.AppendEdge(base.users[g], base.users[g + 5]).ok());
    auto refreshed = maintainer.Refresh();
    ASSERT_TRUE(refreshed.ok());
    generations.push_back(*refreshed);
  }

  // What each generation must answer, keyed by generation number.
  const NodeId probe = base.users[0];
  std::map<uint64_t, QueryResult> expected;
  for (const auto& snapshot : generations) {
    expected[snapshot->generation()] =
        snapshot->Query(base.model, probe, 10);
  }

  IndexRegistry registry(generations[0]);
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snapshot = registry.Get();
        ASSERT_NE(snapshot, nullptr);
        const QueryResult got = snapshot->Query(base.model, probe, 10);
        const QueryResult& want = expected.at(snapshot->generation());
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(got[i].first, want[i].first);
          ASSERT_EQ(got[i].second, want[i].second);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The writer cycles through the generations under the readers.
  for (int round = 0; round < 50; ++round) {
    auto status = registry.Publish(generations[round % 3]);
    ASSERT_TRUE(status.ok()) << status.ToString();
    std::this_thread::yield();
  }
  // Let the readers observe the final generation too, then stop.
  while (reads.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(registry.Info().publishes, 50u);
  EXPECT_EQ(registry.Get()->generation(),
            generations[49 % 3]->generation());
}

}  // namespace
}  // namespace metaprox
