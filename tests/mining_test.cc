#include <gtest/gtest.h>

#include <unordered_set>

#include "metagraph/canonical.h"
#include "mining/miner.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

TEST(Miner, FindsCoreMetapathsOnToyGraph) {
  auto toy = testing::MakeToyGraph();
  MinerOptions options;
  options.anchor_type = toy.user;
  options.min_support = 1;
  options.max_nodes = 3;
  auto mined = MineMetagraphs(toy.graph, options);

  // user-school-user, user-address-user, user-major-user must be found
  // (each has >= 1 instance); user-hobby-user and user-surname-user and
  // user-employer-user exist once each too.
  std::unordered_set<CanonicalCode, CanonicalCodeHash> codes;
  for (const auto& m : mined) codes.insert(Canonicalize(m.graph));
  auto has = [&](const Metagraph& m) {
    return codes.contains(Canonicalize(m));
  };
  EXPECT_TRUE(has(MakePath({toy.user, toy.school, toy.user})));
  EXPECT_TRUE(has(MakePath({toy.user, toy.address, toy.user})));
  EXPECT_TRUE(has(MakePath({toy.user, toy.major, toy.user})));
  EXPECT_TRUE(has(MakePath({toy.user, toy.hobby, toy.user})));
}

TEST(Miner, OutputsAreSymmetricWithAnchorPairs) {
  auto toy = testing::MakeToyGraph();
  MinerOptions options;
  options.anchor_type = toy.user;
  options.min_support = 1;
  options.max_nodes = 4;
  auto mined = MineMetagraphs(toy.graph, options);
  ASSERT_FALSE(mined.empty());
  for (const auto& m : mined) {
    EXPECT_TRUE(m.symmetry.is_symmetric);
    EXPECT_GE(m.graph.CountType(toy.user), 2);
    EXPECT_GE(m.graph.num_nodes() - m.graph.CountType(toy.user), 1);
    EXPECT_LE(m.graph.num_nodes(), 4);
    EXPECT_TRUE(m.graph.IsConnected());
    bool anchor_pair = false;
    for (auto [a, b] : m.symmetry.symmetric_pairs) {
      anchor_pair |= (m.graph.TypeOf(a) == toy.user);
    }
    EXPECT_TRUE(anchor_pair);
    EXPECT_GE(m.support, options.min_support);
  }
}

TEST(Miner, FindsNonPathMetagraphs) {
  auto toy = testing::MakeToyGraph();
  MinerOptions options;
  options.anchor_type = toy.user;
  options.min_support = 1;
  options.max_nodes = 4;
  auto mined = MineMetagraphs(toy.graph, options);
  // M1 (school+major joint) exists for Kate-Jay; must be discovered.
  Metagraph m1;
  MetaNodeId u1 = m1.AddNode(toy.user);
  MetaNodeId u2 = m1.AddNode(toy.user);
  MetaNodeId s = m1.AddNode(toy.school);
  MetaNodeId j = m1.AddNode(toy.major);
  m1.AddEdge(u1, s);
  m1.AddEdge(u2, s);
  m1.AddEdge(u1, j);
  m1.AddEdge(u2, j);
  bool found = false;
  bool any_non_path = false;
  for (const auto& m : mined) {
    if (AreIsomorphic(m.graph, m1)) found = true;
    any_non_path |= !m.is_path;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(any_non_path);
}

TEST(Miner, NoDuplicateOutputs) {
  auto toy = testing::MakeToyGraph();
  MinerOptions options;
  options.anchor_type = toy.user;
  options.min_support = 1;
  options.max_nodes = 4;
  auto mined = MineMetagraphs(toy.graph, options);
  std::unordered_set<CanonicalCode, CanonicalCodeHash> codes;
  for (const auto& m : mined) {
    EXPECT_TRUE(codes.insert(Canonicalize(m.graph)).second)
        << "duplicate metagraph in miner output";
  }
}

TEST(Miner, SupportThresholdPrunes) {
  auto toy = testing::MakeToyGraph();
  MinerOptions loose;
  loose.anchor_type = toy.user;
  loose.min_support = 1;
  loose.max_nodes = 3;
  MinerOptions strict = loose;
  strict.min_support = 3;
  auto all = MineMetagraphs(toy.graph, loose);
  auto frequent = MineMetagraphs(toy.graph, strict);
  EXPECT_LT(frequent.size(), all.size());
  for (const auto& m : frequent) EXPECT_GE(m.support, 3u);
}

TEST(Miner, PathFlagMatchesStructure) {
  auto toy = testing::MakeToyGraph();
  MinerOptions options;
  options.anchor_type = toy.user;
  options.min_support = 1;
  options.max_nodes = 4;
  auto mined = MineMetagraphs(toy.graph, options);
  for (const auto& m : mined) {
    EXPECT_EQ(m.is_path, m.graph.IsPath());
  }
}

TEST(Miner, StatsPopulated) {
  auto toy = testing::MakeToyGraph();
  MinerOptions options;
  options.anchor_type = toy.user;
  options.min_support = 1;
  options.max_nodes = 3;
  MiningStats stats;
  auto mined = MineMetagraphs(toy.graph, options, &stats);
  EXPECT_EQ(stats.patterns_output, mined.size());
  EXPECT_GE(stats.patterns_enumerated, stats.patterns_frequent);
  EXPECT_GE(stats.patterns_frequent, stats.patterns_output);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(Miner, DeterministicAcrossRuns) {
  Graph g = testing::MakeRandomGraph(100, 3, 5.0, 42);
  MinerOptions options;
  options.anchor_type = 0;
  options.min_support = 2;
  options.max_nodes = 4;
  auto a = MineMetagraphs(g, options);
  auto b = MineMetagraphs(g, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].graph == b[i].graph);
    EXPECT_EQ(a[i].support, b[i].support);
  }
}

}  // namespace
}  // namespace metaprox
