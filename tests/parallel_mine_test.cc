// Parallel mining: the level-synchronous miner must produce exactly the
// serial miner's output — same metagraphs, same order, same supports, same
// stats — for any thread count, whether it owns its pool or borrows one.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "datagen/facebook.h"
#include "mining/miner.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace metaprox {
namespace {

void ExpectSameMinedSet(const std::vector<MinedMetagraph>& a,
                        const std::vector<MinedMetagraph>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].graph == b[i].graph) << "metagraph " << i << " differs";
    EXPECT_EQ(a[i].support, b[i].support) << "support " << i << " differs";
    EXPECT_EQ(a[i].is_path, b[i].is_path);
    EXPECT_EQ(a[i].symmetry.symmetric_pairs, b[i].symmetry.symmetric_pairs);
    EXPECT_EQ(a[i].symmetry.aut_size(), b[i].symmetry.aut_size());
  }
}

TEST(ParallelMine, MatchesSerialOutputOnFacebookGraph) {
  datagen::FacebookConfig cfg;
  cfg.num_users = 120;
  auto ds = datagen::GenerateFacebook(cfg, 17);

  MinerOptions options;
  options.anchor_type = ds.user_type;
  options.min_support = 3;
  options.max_nodes = 4;

  MiningStats serial_stats;
  options.num_threads = 1;
  auto serial = MineMetagraphs(ds.graph, options, &serial_stats);
  ASSERT_GT(serial.size(), 3u);

  for (size_t threads : {2u, 8u}) {
    MiningStats stats;
    options.num_threads = threads;
    auto mined = MineMetagraphs(ds.graph, options, &stats);
    ExpectSameMinedSet(serial, mined);
    EXPECT_EQ(stats.patterns_enumerated, serial_stats.patterns_enumerated);
    EXPECT_EQ(stats.patterns_frequent, serial_stats.patterns_frequent);
    EXPECT_EQ(stats.patterns_output, serial_stats.patterns_output);
  }
}

TEST(ParallelMine, MatchesSerialOutputWithBorrowedPool) {
  auto toy = testing::MakeToyGraph();
  MinerOptions options;
  options.anchor_type = toy.user;
  options.min_support = 1;
  options.max_nodes = 4;

  auto serial = MineMetagraphs(toy.graph, options);
  ASSERT_FALSE(serial.empty());

  util::ThreadPool pool(4);
  auto mined = MineMetagraphs(toy.graph, options, nullptr, &pool);
  ExpectSameMinedSet(serial, mined);
}

TEST(ParallelMine, MaxPatternsValveIsDeterministic) {
  Graph g = testing::MakeRandomGraph(80, 3, 4.0, 9);
  MinerOptions options;
  options.anchor_type = 0;
  options.min_support = 2;
  options.max_nodes = 4;
  options.max_patterns = 40;  // force the safety valve to trigger

  options.num_threads = 1;
  MiningStats serial_stats;
  auto serial = MineMetagraphs(g, options, &serial_stats);
  EXPECT_GT(serial_stats.patterns_enumerated, options.max_patterns);

  options.num_threads = 8;
  MiningStats stats;
  auto mined = MineMetagraphs(g, options, &stats);
  ExpectSameMinedSet(serial, mined);
  EXPECT_EQ(stats.patterns_enumerated, serial_stats.patterns_enumerated);
}

TEST(ParallelMine, EngineMineIsThreadCountInvariant) {
  datagen::FacebookConfig cfg;
  cfg.num_users = 100;
  auto ds = datagen::GenerateFacebook(cfg, 23);

  auto run = [&](unsigned threads) {
    EngineOptions options;
    options.miner.anchor_type = ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    options.num_threads = threads;
    SearchEngine engine(ds.graph, options);
    engine.Mine();
    return engine;
  };
  SearchEngine serial = run(1);
  SearchEngine parallel = run(8);
  ExpectSameMinedSet(serial.metagraphs(), parallel.metagraphs());
  EXPECT_EQ(serial.mining_stats().patterns_enumerated,
            parallel.mining_stats().patterns_enumerated);
}

}  // namespace
}  // namespace metaprox
