// The query server end to end over loopback TCP: responses must be
// identical (nodes + bitwise scores) to offline Query() under the model
// each request named, per-connection FIFO must hold under pipelining and
// concurrent clients, micro-batching must actually coalesce windows, the
// v2 protocol (HELLO, named models, k ceiling, admin verbs) must behave —
// with v1 lines untouched — and malformed input / registry hot-swaps /
// shutdown must be handled without wedging a connection or the process.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/simple.h"
#include "core/engine.h"
#include "datagen/facebook.h"
#include "learning/model_io.h"
#include "server/client.h"
#include "server/index_registry.h"
#include "server/model_registry.h"
#include "server/query_server.h"
#include "server/wire.h"
#include "test_helpers.h"
#include "util/socket.h"

namespace metaprox {
namespace {

using server::ModelRegistry;
using server::QueryClient;
using server::QueryServer;
using server::RankResponse;
using server::ServerOptions;

struct Pipeline {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  MgpModel model;      // uniform weights — registry slot "main" (default)
  MgpModel alt_model;  // odd metagraphs zeroed — registry slot "alt"
  std::unique_ptr<ModelRegistry> registry;
  std::unique_ptr<server::IndexRegistry> indexes;
  std::vector<NodeId> users;
};

// One matched engine + two models shared by every test. Each test runs
// its own QueryServer over the shared index registry (read paths only pin
// the immutable snapshot, so concurrent servers would even be safe — the
// per-test scoping just keeps ports and stats isolated). Tests that
// MUTATE a registry build their own instead of touching the shared one.
const Pipeline& SharedPipeline() {
  static const Pipeline* pipeline = [] {
    auto* p = new Pipeline();
    datagen::FacebookConfig cfg;
    cfg.num_users = 150;
    p->ds = datagen::GenerateFacebook(cfg, 23);

    EngineOptions options;
    options.miner.anchor_type = p->ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    options.num_threads = 2;  // the server must drive the pooled path
    p->engine = std::make_unique<SearchEngine>(p->ds.graph, options);
    p->engine->Mine();
    p->engine->MatchAll();
    p->model.weights = UniformWeights(p->engine->index());
    // A genuinely different model over the same index: every odd
    // metagraph muted, so "alt" rankings differ from "main" ones.
    p->alt_model.weights = p->model.weights;
    for (size_t i = 1; i < p->alt_model.weights.size(); i += 2) {
      p->alt_model.weights[i] = 0.0;
    }
    p->registry =
        std::make_unique<ModelRegistry>(p->model.weights.size());
    EXPECT_TRUE(p->registry->Load("main", p->model).ok());
    EXPECT_TRUE(p->registry->Load("alt", p->alt_model).ok());

    p->indexes =
        std::make_unique<server::IndexRegistry>(p->engine->Snapshot());

    auto pool = p->ds.graph.NodesOfType(p->ds.user_type);
    p->users.assign(pool.begin(), pool.end());
    return p;
  }();
  return *pipeline;
}

std::unique_ptr<QueryServer> StartServer(ServerOptions options,
                                         ModelRegistry* registry = nullptr) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  if (options.default_model == "default") options.default_model = "main";
  options.num_threads = 2;  // the server must drive the pooled path
  auto server = std::make_unique<QueryServer>(
      p.indexes.get(), registry != nullptr ? registry : p.registry.get(),
      options);
  auto status = server->Start();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(server->port(), 0);
  return server;
}

// Response == offline Query() under `model`: same nodes, bitwise-same
// scores (%.17g round-trips the double through the wire exactly).
void ExpectMatchesQuery(const RankResponse& response, NodeId q, size_t k,
                        const MgpModel* model = nullptr) {
  const Pipeline& p = SharedPipeline();
  const QueryResult expected =
      p.engine->Query(model != nullptr ? *model : p.model, q, k);
  ASSERT_EQ(response.query, q);
  ASSERT_EQ(response.entries.size(), expected.size()) << "node " << q;
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(response.entries[r].node, expected[r].first)
        << "node " << q << " rank " << r;
    EXPECT_EQ(response.entries[r].score, expected[r].second)
        << "node " << q << " rank " << r;
  }
}

TEST(QueryServer, SingleQueriesMatchOfflineQuery) {
  auto server = StartServer({});
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const Pipeline& p = SharedPipeline();
  for (size_t i = 0; i < p.users.size(); i += 13) {
    auto response = client->Rank(p.users[i], 10);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectMatchesQuery(*response, p.users[i], 10);
  }
  // Explicit k on the wire, including k beyond any candidate set.
  auto response = client->Rank(p.users[0], 3);
  ASSERT_TRUE(response.ok());
  ExpectMatchesQuery(*response, p.users[0], 3);
  response = client->Rank(p.users[0], 100000);
  ASSERT_TRUE(response.ok());
  ExpectMatchesQuery(*response, p.users[0], 100000);
}

TEST(QueryServer, HelloHandshakeAndVersioning) {
  ServerOptions options;
  options.max_k = 4096;
  auto server = StartServer(options);
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  auto hello = client->Hello();
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello->version, server::kWireVersion);
  EXPECT_EQ(hello->max_k, 4096u);
  EXPECT_EQ(hello->default_model, "main");

  // A v1 handshake is accepted too; a FUTURE version is refused.
  hello = client->Hello(1);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->version, 1u);
  hello = client->Hello(server::kWireVersion + 1);
  EXPECT_FALSE(hello.ok());

  // The refusal did not break the connection.
  const Pipeline& p = SharedPipeline();
  auto response = client->Rank(p.users[0], 10);
  ASSERT_TRUE(response.ok());
  ExpectMatchesQuery(*response, p.users[0], 10);
}

TEST(QueryServer, NamedModelQueriesMatchOfflineUnderThatModel) {
  auto server = StartServer({});
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  const Pipeline& p = SharedPipeline();

  bool some_ranking_differs = false;
  for (size_t i = 0; i < p.users.size(); i += 13) {
    const NodeId q = p.users[i];
    auto main_response = client->Rank("main", q, 10);
    ASSERT_TRUE(main_response.ok()) << main_response.status().ToString();
    ExpectMatchesQuery(*main_response, q, 10, &p.model);
    auto alt_response = client->Rank("alt", q, 10);
    ASSERT_TRUE(alt_response.ok()) << alt_response.status().ToString();
    ExpectMatchesQuery(*alt_response, q, 10, &p.alt_model);
    if (main_response->entries.size() != alt_response->entries.size()) {
      some_ranking_differs = true;
    } else {
      for (size_t r = 0; r < main_response->entries.size(); ++r) {
        if (main_response->entries[r].node != alt_response->entries[r].node ||
            main_response->entries[r].score !=
                alt_response->entries[r].score) {
          some_ranking_differs = true;
        }
      }
    }
  }
  // The two models must be observably different end to end, or this test
  // could pass with the model argument ignored.
  EXPECT_TRUE(some_ranking_differs);
}

TEST(QueryServer, PipelinedResponsesArriveInSendOrder) {
  ServerOptions options;
  options.max_batch = 16;
  options.window_micros = 2000;
  auto server = StartServer(options);
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  const Pipeline& p = SharedPipeline();

  // Interleave v1 (default-model) and v2 (named-model) queries on ONE
  // connection: FIFO must hold across the mix, and each response must
  // reflect the model its request named.
  std::vector<std::pair<NodeId, bool>> sent;  // (node, used alt)
  for (size_t i = 0; i < 60; ++i) {
    const NodeId q = p.users[(7 * i) % p.users.size()];
    const bool alt = i % 3 == 1;
    ASSERT_TRUE((alt ? client->SendQuery("alt", q, 10)
                     : client->SendQuery(q, 10))
                    .ok());
    sent.push_back({q, alt});
  }
  for (const auto& [q, alt] : sent) {
    auto response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectMatchesQuery(*response, q, 10,
                       alt ? &SharedPipeline().alt_model : nullptr);
  }
}

TEST(QueryServer, ConcurrentClientsAllGetExactResults) {
  ServerOptions options;
  options.max_batch = 32;
  options.window_micros = 1000;
  auto server = StartServer(options);
  const Pipeline& p = SharedPipeline();

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 40;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = QueryClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      std::vector<NodeId> sent;
      for (size_t i = 0; i < kPerClient; ++i) {
        const NodeId q = p.users[(c * 31 + i * 3) % p.users.size()];
        auto status = client->SendQuery(q, 10);
        if (!status.ok()) {
          failures[c] = status.ToString();
          return;
        }
        sent.push_back(q);
      }
      for (NodeId q : sent) {
        auto response = client->ReceiveResponse();
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        if (response->query != q) {
          failures[c] = "order violated";
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  const server::ServerStats stats = server->stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.queries, kClients * kPerClient);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(QueryServer, MicroBatchingCoalescesPipelinedQueries) {
  ServerOptions options;
  options.max_batch = 32;
  // A generous window: the client floods 100 queries over loopback well
  // inside it, so the batcher must coalesce them into few BatchQuery
  // calls. (Upper bound asserted loosely to stay timing-robust.)
  options.window_micros = 50000;
  auto server = StartServer(options);
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  const Pipeline& p = SharedPipeline();

  constexpr size_t kQueries = 100;
  for (size_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client->SendQuery(p.users[i % p.users.size()], 10).ok());
  }
  for (size_t i = 0; i < kQueries; ++i) {
    auto response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok());
    ExpectMatchesQuery(*response, p.users[i % p.users.size()], 10);
  }
  const server::ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries, kQueries);
  EXPECT_LT(stats.batches, kQueries / 2) << "micro-batching never engaged";
  EXPECT_GT(stats.largest_batch, 1u);
}

TEST(QueryServer, PerModelServeCountersAdvance) {
  const Pipeline& p = SharedPipeline();
  // Own registry: this test reasons about exact serve counts.
  ModelRegistry registry(p.model.weights.size());
  ASSERT_TRUE(registry.Load("main", p.model).ok());
  ASSERT_TRUE(registry.Load("alt", p.alt_model).ok());
  auto server = StartServer({}, &registry);
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->Rank(p.users[i], 10).ok());  // v1 -> "main"
  }
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->Rank("alt", p.users[i], 10).ok());
  }
  EXPECT_EQ(registry.Get("main")->serves_count(), 5u);
  EXPECT_EQ(registry.Get("alt")->serves_count(), 3u);
}

TEST(QueryServer, OversizedKAndUnknownModelGetStructuredErrors) {
  ServerOptions options;
  options.max_k = 50;
  auto server = StartServer(options);
  const Pipeline& p = SharedPipeline();
  auto sock = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(sock.ok());
  util::LineReader reader(*sock);
  std::string line;
  int code = 0;
  std::string message;

  // k over the ceiling: an explicit refusal naming the limit, not a
  // silently clamped ranking.
  ASSERT_TRUE(
      util::SendAll(*sock, server::BuildQueryRequest(p.users[0], 51)).ok());
  ASSERT_TRUE(reader.ReadLine(&line));
  ASSERT_TRUE(server::ParseErrorResponse(line, &code, &message)) << line;
  EXPECT_EQ(code, static_cast<int>(server::ErrorCode::kKTooLarge));
  EXPECT_NE(message.find("50"), std::string::npos) << message;

  // Unknown model.
  ASSERT_TRUE(util::SendAll(*sock, server::BuildQueryRequest(
                                       "nosuchmodel", p.users[0], 10))
                  .ok());
  ASSERT_TRUE(reader.ReadLine(&line));
  ASSERT_TRUE(server::ParseErrorResponse(line, &code, &message)) << line;
  EXPECT_EQ(code, static_cast<int>(server::ErrorCode::kUnknownModel));

  // At the ceiling is fine, and the connection survived both errors.
  ASSERT_TRUE(
      util::SendAll(*sock, server::BuildQueryRequest(p.users[0], 50)).ok());
  ASSERT_TRUE(reader.ReadLine(&line));
  RankResponse response;
  ASSERT_TRUE(server::ParseQueryResponse(line, &response)) << line;
  ExpectMatchesQuery(response, p.users[0], 50);
}

TEST(QueryServer, MalformedRequestsGetErrorsAndConnectionSurvives) {
  auto server = StartServer({});
  const Pipeline& p = SharedPipeline();
  auto sock = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(sock.ok());
  util::LineReader reader(*sock);
  std::string line;

  // Garbage, bad node ids, trailing junk, out-of-range nodes, model-ish
  // tokens that aren't legal names: each gets an 'E' line; the connection
  // keeps working.
  for (const char* bad :
       {"bogus", "Q", "Q -3", "Q 1 2 3", "Q notanode extra 1 2",
        "Q 999999999", "Q 9name 3", "HELLO", "HELLO x", "LOAD one"}) {
    ASSERT_TRUE(util::SendAll(*sock, std::string(bad) + "\n").ok());
    ASSERT_TRUE(reader.ReadLine(&line)) << bad;
    EXPECT_EQ(line.substr(0, 2), "E ") << "request: " << bad;
  }

  // PING and a real query still work on the same connection.
  ASSERT_TRUE(util::SendAll(*sock, server::BuildPingRequest()).ok());
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "PONG");
  ASSERT_TRUE(
      util::SendAll(*sock, server::BuildQueryRequest(p.users[0], 10)).ok());
  ASSERT_TRUE(reader.ReadLine(&line));
  RankResponse response;
  ASSERT_TRUE(server::ParseQueryResponse(line, &response)) << line;
  ExpectMatchesQuery(response, p.users[0], 10);

  EXPECT_GE(server->stats().protocol_errors, 10u);
}

TEST(QueryServer, AdminVerbsManageTheRegistry) {
  const Pipeline& p = SharedPipeline();
  const std::string model_path = ::testing::TempDir() + "/admin_alt.model";
  ASSERT_TRUE(SaveModel(p.alt_model, model_path).ok());

  ModelRegistry registry(p.model.weights.size());
  ASSERT_TRUE(registry.Load("main", p.model).ok());
  ServerOptions options;
  options.admin = true;
  auto server = StartServer(options, &registry);
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  // LOAD publishes a new slot from the saved artifact...
  auto reply = client->Roundtrip(server::BuildLoadRequest("hot", model_path));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "OK LOAD hot 1");
  // ...which serves bitwise what offline Query() computes for its weights.
  auto response = client->Rank("hot", p.users[0], 10);
  ASSERT_TRUE(response.ok());
  ExpectMatchesQuery(*response, p.users[0], 10, &p.alt_model);

  // Duplicate LOAD is refused; RELOAD bumps the version.
  EXPECT_FALSE(client->Roundtrip(server::BuildLoadRequest("hot", model_path))
                   .ok());
  reply = client->Roundtrip(server::BuildReloadRequest("hot", model_path));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "OK RELOAD hot 2");

  // STAT and LIST see the slot (2 queries served so far on 'hot'... only
  // the Rank above, so 1).
  reply = client->Roundtrip(server::BuildStatRequest("hot"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "STAT hot 2 " + std::to_string(p.model.weights.size()) +
                        " 1");
  reply = client->Roundtrip(server::BuildListRequest());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->substr(0, 9), "MODELS 2 ") << *reply;

  // The default model cannot be unloaded; 'hot' can, after which it is
  // unknown to queries.
  EXPECT_FALSE(client->Roundtrip(server::BuildUnloadRequest("main")).ok());
  reply = client->Roundtrip(server::BuildUnloadRequest("hot"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "OK UNLOAD hot");
  EXPECT_FALSE(client->Rank("hot", p.users[0], 10).ok());

  // A bad artifact path is an error reply, not a crash or a wedge.
  EXPECT_FALSE(
      client->Roundtrip(server::BuildLoadRequest("bad", "/nonexistent.model"))
          .ok());
  EXPECT_GE(server->stats().admin_commands, 7u);
}

TEST(QueryServer, AdminVerbsAreRefusedWithoutAdminFlag) {
  auto server = StartServer({});  // admin defaults to off
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  auto reply = client->Roundtrip(server::BuildListRequest());
  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("15"), std::string::npos)
      << reply.status().ToString();
  // Queries still served.
  const Pipeline& p = SharedPipeline();
  auto response = client->Rank(p.users[0], 10);
  ASSERT_TRUE(response.ok());
  ExpectMatchesQuery(*response, p.users[0], 10);
}

// The acceptance scenario: a v1 client and a v2 client connected to the
// same server concurrently, with RELOAD hot-swaps racing the in-flight
// batches the whole time — every response must still be byte-identical to
// offline Query() under the request's model. Runs under TSan via the
// `concurrency` ctest label.
TEST(QueryServer, HotSwapRacesInFlightBatchesSafely) {
  const Pipeline& p = SharedPipeline();
  ModelRegistry registry(p.model.weights.size());
  ASSERT_TRUE(registry.Load("main", p.model).ok());
  ASSERT_TRUE(registry.Load("alt", p.alt_model).ok());

  ServerOptions options;
  options.max_batch = 16;
  options.window_micros = 1000;
  auto server = StartServer(options, &registry);

  constexpr size_t kPerClient = 120;
  std::atomic<bool> done{false};
  std::vector<std::string> failures(2);

  // Client 0: v1 lines (default model). Client 1: v2 lines naming "alt".
  auto run_client = [&](size_t c, const std::string& model) {
    auto client = QueryClient::Connect("127.0.0.1", server->port());
    if (!client.ok()) {
      failures[c] = client.status().ToString();
      return;
    }
    std::vector<NodeId> sent;
    for (size_t i = 0; i < kPerClient; ++i) {
      const NodeId q = p.users[(c * 17 + i * 5) % p.users.size()];
      auto status = model.empty() ? client->SendQuery(q, 10)
                                  : client->SendQuery(model, q, 10);
      if (!status.ok()) {
        failures[c] = status.ToString();
        return;
      }
      sent.push_back(q);
    }
    const MgpModel& expected_model = model.empty() ? p.model : p.alt_model;
    for (NodeId q : sent) {
      auto response = client->ReceiveResponse();
      if (!response.ok()) {
        failures[c] = response.status().ToString();
        return;
      }
      if (response->query != q) {
        failures[c] = "order violated";
        return;
      }
      const QueryResult expected = p.engine->Query(expected_model, q, 10);
      if (response->entries.size() != expected.size()) {
        failures[c] = "entry count differs from offline Query";
        return;
      }
      for (size_t r = 0; r < expected.size(); ++r) {
        if (response->entries[r].node != expected[r].first ||
            response->entries[r].score != expected[r].second) {
          failures[c] = "response differs from offline Query across reload";
          return;
        }
      }
    }
  };

  std::thread v1_client(run_client, 0, "");
  std::thread v2_client(run_client, 1, "alt");
  // The swapper pushes identical weights (so responses stay checkable)
  // through the full Reload path — new snapshot objects, version bumps,
  // old snapshots retired — as fast as it can while the clients stream.
  uint64_t swaps = 0;
  std::string swap_failure;
  std::thread swapper([&] {
    while (!done.load()) {
      auto alt_version = registry.Reload("alt", p.alt_model);
      auto main_version = registry.Reload("main", p.model);
      if (!alt_version.ok() || !main_version.ok()) {
        swap_failure = (!alt_version.ok() ? alt_version : main_version)
                           .status()
                           .ToString();
        return;
      }
      ++swaps;
      std::this_thread::yield();
    }
  });

  v1_client.join();
  v2_client.join();
  done.store(true);
  swapper.join();
  EXPECT_TRUE(swap_failure.empty()) << swap_failure;
  EXPECT_GT(swaps, 0u);
  EXPECT_TRUE(failures[0].empty()) << "v1 client: " << failures[0];
  EXPECT_TRUE(failures[1].empty()) << "v2 client: " << failures[1];
  // Both names kept serving across every swap.
  EXPECT_EQ(registry.Get("main")->serves_count() +
                registry.Get("alt")->serves_count(),
            2 * kPerClient);
}

TEST(QueryServer, StatsRequestAnswers) {
  auto server = StartServer({});
  auto sock = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(sock.ok());
  util::LineReader reader(*sock);
  ASSERT_TRUE(util::SendAll(*sock, server::BuildStatsRequest()).ok());
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line.substr(0, 6), "STATS ") << line;
}

TEST(QueryServer, StopDisconnectsClientsWithoutHanging) {
  auto server = StartServer({});
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  server->Stop();
  // The connection is gone; the client sees EOF, not a hang.
  auto response = client->Rank(0, 10);
  EXPECT_FALSE(response.ok());
  server->Stop();  // idempotent
}

TEST(QueryServer, ServersRunSequentiallyOverOneEngine) {
  const Pipeline& p = SharedPipeline();
  for (int round = 0; round < 2; ++round) {
    auto server = StartServer({});
    auto client = QueryClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    auto response = client->Rank(p.users[round], 10);
    ASSERT_TRUE(response.ok());
    ExpectMatchesQuery(*response, p.users[round], 10);
    server->Stop();
  }
}

TEST(QueryServer, StartRequiresRegistryMatchingTheIndex) {
  const Pipeline& p = SharedPipeline();
  // A registry sized for one more metagraph than the served index: every
  // model in it would misalign with the index rows, so Start() refuses
  // even though the default model is loaded.
  const size_t wrong = p.model.weights.size() + 1;
  ModelRegistry registry(wrong);
  MgpModel model;
  model.weights.assign(wrong, 1.0);
  ASSERT_TRUE(registry.Load("main", model).ok());
  ServerOptions options;
  options.default_model = "main";
  QueryServer server(
      const_cast<Pipeline&>(p).indexes.get(), &registry, options);
  auto status = server.Start();
  EXPECT_FALSE(status.ok());
}

TEST(QueryServer, StartRequiresTheDefaultModel) {
  const Pipeline& p = SharedPipeline();
  ModelRegistry registry(p.model.weights.size());  // empty
  ServerOptions options;
  options.default_model = "main";
  QueryServer server(
      const_cast<Pipeline&>(p).indexes.get(), &registry, options);
  auto status = server.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("main"), std::string::npos);
}

}  // namespace
}  // namespace metaprox
