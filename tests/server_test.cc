// The query server end to end over loopback TCP: responses must be
// identical (nodes + bitwise scores) to offline Query(), per-connection
// FIFO must hold under pipelining and concurrent clients, micro-batching
// must actually coalesce windows, and malformed input / shutdown must be
// handled without wedging a connection or the process.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/simple.h"
#include "core/engine.h"
#include "datagen/facebook.h"
#include "server/client.h"
#include "server/query_server.h"
#include "server/wire.h"
#include "test_helpers.h"
#include "util/socket.h"

namespace metaprox {
namespace {

using server::QueryClient;
using server::QueryServer;
using server::RankResponse;
using server::ServerOptions;

struct Pipeline {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  MgpModel model;
  std::vector<NodeId> users;
};

// One matched engine + model shared by every test. Each test runs its own
// QueryServer over it; servers run strictly one at a time (the batcher is
// the engine's only non-const user), which the per-test scoping enforces.
const Pipeline& SharedPipeline() {
  static const Pipeline* pipeline = [] {
    auto* p = new Pipeline();
    datagen::FacebookConfig cfg;
    cfg.num_users = 150;
    p->ds = datagen::GenerateFacebook(cfg, 23);

    EngineOptions options;
    options.miner.anchor_type = p->ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    options.num_threads = 2;  // the server must drive the pooled path
    p->engine = std::make_unique<SearchEngine>(p->ds.graph, options);
    p->engine->Mine();
    p->engine->MatchAll();
    p->model.weights = UniformWeights(p->engine->index());

    auto pool = p->ds.graph.NodesOfType(p->ds.user_type);
    p->users.assign(pool.begin(), pool.end());
    return p;
  }();
  return *pipeline;
}

std::unique_ptr<QueryServer> StartServer(ServerOptions options) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  auto server =
      std::make_unique<QueryServer>(p.engine.get(), p.model, options);
  auto status = server->Start();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(server->port(), 0);
  return server;
}

// Response == offline Query(): same nodes, bitwise-same scores (%.17g
// round-trips the double through the wire exactly).
void ExpectMatchesQuery(const RankResponse& response, NodeId q, size_t k) {
  const Pipeline& p = SharedPipeline();
  const QueryResult expected = p.engine->Query(p.model, q, k);
  ASSERT_EQ(response.query, q);
  ASSERT_EQ(response.entries.size(), expected.size()) << "node " << q;
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(response.entries[r].node, expected[r].first)
        << "node " << q << " rank " << r;
    EXPECT_EQ(response.entries[r].score, expected[r].second)
        << "node " << q << " rank " << r;
  }
}

TEST(QueryServer, SingleQueriesMatchOfflineQuery) {
  auto server = StartServer({});
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const Pipeline& p = SharedPipeline();
  for (size_t i = 0; i < p.users.size(); i += 13) {
    auto response = client->Rank(p.users[i], 10);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectMatchesQuery(*response, p.users[i], 10);
  }
  // Explicit k on the wire, including k beyond any candidate set.
  auto response = client->Rank(p.users[0], 3);
  ASSERT_TRUE(response.ok());
  ExpectMatchesQuery(*response, p.users[0], 3);
  response = client->Rank(p.users[0], 100000);
  ASSERT_TRUE(response.ok());
  ExpectMatchesQuery(*response, p.users[0], 100000);
}

TEST(QueryServer, PipelinedResponsesArriveInSendOrder) {
  ServerOptions options;
  options.max_batch = 16;
  options.window_micros = 2000;
  auto server = StartServer(options);
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  const Pipeline& p = SharedPipeline();

  std::vector<NodeId> sent;
  for (size_t i = 0; i < 60; ++i) {
    const NodeId q = p.users[(7 * i) % p.users.size()];
    ASSERT_TRUE(client->SendQuery(q, 10).ok());
    sent.push_back(q);
  }
  for (NodeId q : sent) {
    auto response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectMatchesQuery(*response, q, 10);  // asserts response.query == q
  }
}

TEST(QueryServer, ConcurrentClientsAllGetExactResults) {
  ServerOptions options;
  options.max_batch = 32;
  options.window_micros = 1000;
  auto server = StartServer(options);
  const Pipeline& p = SharedPipeline();

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 40;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = QueryClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      std::vector<NodeId> sent;
      for (size_t i = 0; i < kPerClient; ++i) {
        const NodeId q = p.users[(c * 31 + i * 3) % p.users.size()];
        auto status = client->SendQuery(q, 10);
        if (!status.ok()) {
          failures[c] = status.ToString();
          return;
        }
        sent.push_back(q);
      }
      for (NodeId q : sent) {
        auto response = client->ReceiveResponse();
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        if (response->query != q) {
          failures[c] = "order violated";
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  const server::ServerStats stats = server->stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.queries, kClients * kPerClient);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(QueryServer, MicroBatchingCoalescesPipelinedQueries) {
  ServerOptions options;
  options.max_batch = 32;
  // A generous window: the client floods 100 queries over loopback well
  // inside it, so the batcher must coalesce them into few BatchQuery
  // calls. (Upper bound asserted loosely to stay timing-robust.)
  options.window_micros = 50000;
  auto server = StartServer(options);
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  const Pipeline& p = SharedPipeline();

  constexpr size_t kQueries = 100;
  for (size_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client->SendQuery(p.users[i % p.users.size()], 10).ok());
  }
  for (size_t i = 0; i < kQueries; ++i) {
    auto response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok());
    ExpectMatchesQuery(*response, p.users[i % p.users.size()], 10);
  }
  const server::ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries, kQueries);
  EXPECT_LT(stats.batches, kQueries / 2) << "micro-batching never engaged";
  EXPECT_GT(stats.largest_batch, 1u);
}

TEST(QueryServer, MalformedRequestsGetErrorsAndConnectionSurvives) {
  auto server = StartServer({});
  const Pipeline& p = SharedPipeline();
  auto sock = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(sock.ok());
  util::LineReader reader(*sock);
  std::string line;

  // Garbage, bad node ids, trailing junk, out-of-range nodes: each gets an
  // 'E' line; the connection keeps working.
  for (const char* bad :
       {"bogus", "Q", "Q -3", "Q 1 2 3", "Q notanode",
        "Q 999999999"}) {
    ASSERT_TRUE(util::SendAll(*sock, std::string(bad) + "\n").ok());
    ASSERT_TRUE(reader.ReadLine(&line)) << bad;
    EXPECT_EQ(line.substr(0, 2), "E ") << "request: " << bad;
  }

  // PING and a real query still work on the same connection.
  ASSERT_TRUE(util::SendAll(*sock, server::BuildPingRequest()).ok());
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "PONG");
  ASSERT_TRUE(
      util::SendAll(*sock, server::BuildQueryRequest(p.users[0], 10)).ok());
  ASSERT_TRUE(reader.ReadLine(&line));
  RankResponse response;
  ASSERT_TRUE(server::ParseQueryResponse(line, &response)) << line;
  ExpectMatchesQuery(response, p.users[0], 10);

  EXPECT_GE(server->stats().protocol_errors, 6u);
}

TEST(QueryServer, StatsRequestAnswers) {
  auto server = StartServer({});
  auto sock = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(sock.ok());
  util::LineReader reader(*sock);
  ASSERT_TRUE(util::SendAll(*sock, server::BuildStatsRequest()).ok());
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line.substr(0, 6), "STATS ") << line;
}

TEST(QueryServer, StopDisconnectsClientsWithoutHanging) {
  auto server = StartServer({});
  auto client = QueryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  server->Stop();
  // The connection is gone; the client sees EOF, not a hang.
  auto response = client->Rank(0, 10);
  EXPECT_FALSE(response.ok());
  server->Stop();  // idempotent
}

TEST(QueryServer, ServersRunSequentiallyOverOneEngine) {
  const Pipeline& p = SharedPipeline();
  for (int round = 0; round < 2; ++round) {
    auto server = StartServer({});
    auto client = QueryClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    auto response = client->Rank(p.users[round], 10);
    ASSERT_TRUE(response.ok());
    ExpectMatchesQuery(*response, p.users[round], 10);
    server->Stop();
  }
}

TEST(QueryServer, StartRequiresFinalizedIndex) {
  const Pipeline& p = SharedPipeline();
  datagen::FacebookConfig cfg;
  cfg.num_users = 30;
  datagen::Dataset ds = datagen::GenerateFacebook(cfg, 5);
  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  SearchEngine engine(ds.graph, options);
  engine.Mine();  // index exists but is not finalized
  QueryServer server(&engine, p.model, {});
  auto status = server.Start();
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace metaprox
